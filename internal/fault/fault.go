// Package fault implements the seeded fault injector of the correctness
// harness: a deterministic source of matcher errors, added latency, worker
// panics, and crash points, used to drive the fault-tolerant runtime through
// its failure paths on demand. Everything is derived from one seed, so a
// failing recovery-equivalence case replays exactly from its seed — the same
// property the data generator and fuzz corpus already have.
package fault

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"pier/internal/match"
	"pier/internal/profile"
)

// ErrInjected is the error returned by injected matcher failures. Tests
// assert on it with errors.Is to distinguish injected faults from real ones.
var ErrInjected = errors.New("fault: injected matcher failure")

// Config selects which faults to inject and how often. Zero values disable
// each fault, so Config{} is a no-op injector.
type Config struct {
	// Seed drives all injection decisions.
	Seed int64
	// MatcherErrorRate is the probability in [0, 1] that a matcher call
	// fails with ErrInjected instead of returning a verdict.
	MatcherErrorRate float64
	// MatcherLatency is added to every matcher call (before any failure),
	// simulating a slow remote matcher for timeout testing.
	MatcherLatency time.Duration
	// PanicRate is the probability in [0, 1] that a wrapped worker task
	// panics, exercising the pool's panic isolation.
	PanicRate float64
	// CrashAtIncrement, when > 0, makes CrashNow report true once the N-th
	// increment (1-based) is announced via NextIncrement — the harness's
	// simulated process kill.
	CrashAtIncrement int
}

// Injector is a concurrency-safe fault source. Decisions consume a seeded
// PRNG under a mutex: a given seed yields a reproducible decision *sequence*,
// though under concurrent matching the assignment of decisions to pairs can
// vary with scheduling — the recovery oracles therefore assert set-level
// properties, not which specific pair failed.
type Injector struct {
	cfg Config

	mu         sync.Mutex
	rng        *rand.Rand
	increments int

	injectedErrors int
	injectedPanics int
}

// New returns an injector for cfg.
func New(cfg Config) *Injector {
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// MatchErr decides whether the current matcher call fails, returning
// ErrInjected (wrapped with an ordinal, for log forensics) or nil.
func (f *Injector) MatchErr() error {
	if f.cfg.MatcherErrorRate <= 0 {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.rng.Float64() >= f.cfg.MatcherErrorRate {
		return nil
	}
	f.injectedErrors++
	return fmt.Errorf("%w #%d", ErrInjected, f.injectedErrors)
}

// MaybePanic panics with a recognizable value with probability PanicRate.
func (f *Injector) MaybePanic() {
	if f.cfg.PanicRate <= 0 {
		return
	}
	f.mu.Lock()
	hit := f.rng.Float64() < f.cfg.PanicRate
	if hit {
		f.injectedPanics++
	}
	n := f.injectedPanics
	f.mu.Unlock()
	if hit {
		panic(fmt.Sprintf("fault: injected worker panic #%d", n))
	}
}

// NextIncrement announces that increment processing is about to start and
// reports whether the configured crash point has been reached.
func (f *Injector) NextIncrement() (crash bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.increments++
	return f.cfg.CrashAtIncrement > 0 && f.increments == f.cfg.CrashAtIncrement
}

// InjectedErrors returns how many matcher errors have been injected.
func (f *Injector) InjectedErrors() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injectedErrors
}

// InjectedPanics returns how many worker panics have been injected.
func (f *Injector) InjectedPanics() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injectedPanics
}

// Matcher wraps inner with this injector's matcher faults: added latency
// first, then a possible injected error, then — only on the healthy path —
// the real verdict. The wrapper sits *under* any retry/breaker layer, playing
// the role of the unreliable remote matcher.
func (f *Injector) Matcher(inner match.ContextMatcher) match.ContextMatcher {
	return match.ContextFunc(func(ctx context.Context, a, b *profile.Profile) (bool, error) {
		if f.cfg.MatcherLatency > 0 {
			t := time.NewTimer(f.cfg.MatcherLatency)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return false, ctx.Err()
			}
		}
		f.MaybePanic()
		if err := f.MatchErr(); err != nil {
			return false, err
		}
		return inner.Match(ctx, a, b)
	})
}
