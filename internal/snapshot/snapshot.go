// Package snapshot implements the versioned binary container format for PIER
// checkpoints. A snapshot is a magic header followed by a sequence of named,
// length-prefixed sections, each holding one component's gob-encoded state
// (blocking collection, strategy index, adaptive-K estimators, live-stream
// accounting, …).
//
// The container is deliberately dumb: it knows nothing about the sections'
// contents, only their names and byte lengths. Components own their images,
// so a component can evolve its persisted representation without touching the
// framing, and the reader can reject a snapshot with a precise error — wrong
// magic, unsupported version, truncated section, section-order mismatch —
// before any component decoder runs.
//
// Compatibility policy (DESIGN.md §9): the format version is bumped whenever
// any section's image changes incompatibly; readers accept exactly one
// version. Checkpoints are operational state for crash recovery, not an
// archival format — a version mismatch means "re-ingest from the source",
// never silent partial restore.
package snapshot

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
)

// Magic identifies a PIER snapshot stream.
const Magic = "PIERSNAP"

// Version is the current container format version. Readers reject any other
// value. Version 2 introduced the symbol-interned blocking index: the
// collection and strategy sections persist dense uint32 symbols plus the
// symbol table that resolves them, which version-1 snapshots predate.
const Version uint32 = 2

// maxSectionSize bounds a single section to guard the reader against
// corrupted or adversarial length prefixes (1 GiB is far beyond any real
// checkpoint section).
const maxSectionSize = 1 << 30

// Writer emits a snapshot stream: header first, then sections in call order.
type Writer struct {
	w   io.Writer
	err error
	// Bytes counts the payload written so far, header included, for the
	// checkpoint-size observability the pipeline reports.
	bytes int64
}

// NewWriter writes the snapshot header to w and returns the section writer.
func NewWriter(w io.Writer) (*Writer, error) {
	sw := &Writer{w: w}
	var hdr bytes.Buffer
	hdr.WriteString(Magic)
	if err := binary.Write(&hdr, binary.LittleEndian, Version); err != nil {
		return nil, fmt.Errorf("snapshot: write header: %w", err)
	}
	n, err := w.Write(hdr.Bytes())
	sw.bytes += int64(n)
	if err != nil {
		return nil, fmt.Errorf("snapshot: write header: %w", err)
	}
	return sw, nil
}

// Section writes one named section whose body is produced by encode (usually
// a closure gob-encoding a component image). After the first error every
// subsequent call is a no-op returning that error.
func (sw *Writer) Section(name string, encode func(io.Writer) error) error {
	if sw.err != nil {
		return sw.err
	}
	var body bytes.Buffer
	if err := encode(&body); err != nil {
		sw.err = fmt.Errorf("snapshot: encode section %q: %w", name, err)
		return sw.err
	}
	var frame bytes.Buffer
	if err := binary.Write(&frame, binary.LittleEndian, uint32(len(name))); err != nil {
		sw.err = err
		return sw.err
	}
	frame.WriteString(name)
	if err := binary.Write(&frame, binary.LittleEndian, uint64(body.Len())); err != nil {
		sw.err = err
		return sw.err
	}
	n1, err := sw.w.Write(frame.Bytes())
	sw.bytes += int64(n1)
	if err != nil {
		sw.err = fmt.Errorf("snapshot: write section %q: %w", name, err)
		return sw.err
	}
	n2, err := sw.w.Write(body.Bytes())
	sw.bytes += int64(n2)
	if err != nil {
		sw.err = fmt.Errorf("snapshot: write section %q: %w", name, err)
		return sw.err
	}
	return nil
}

// Gob writes one named section holding the gob encoding of v.
func (sw *Writer) Gob(name string, v any) error {
	return sw.Section(name, func(w io.Writer) error {
		return gob.NewEncoder(w).Encode(v)
	})
}

// Bytes returns the total bytes written so far (header + sections).
func (sw *Writer) Bytes() int64 { return sw.bytes }

// Reader consumes a snapshot stream section by section, in writing order.
type Reader struct {
	r io.Reader
}

// NewReader validates the snapshot header of r and returns the section
// reader.
func NewReader(r io.Reader) (*Reader, error) {
	hdr := make([]byte, len(Magic)+4)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("snapshot: read header: %w", err)
	}
	if string(hdr[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("snapshot: bad magic %q (not a PIER snapshot)", hdr[:len(Magic)])
	}
	v := binary.LittleEndian.Uint32(hdr[len(Magic):])
	if v == 1 {
		// The common stale checkpoint after an upgrade deserves a precise
		// diagnosis, not a generic number mismatch.
		return nil, fmt.Errorf("snapshot: format version 1 predates the symbol-interned blocking index (this build reads version %d); re-ingest from the source — checkpoints are crash-recovery state, not an archive", Version)
	}
	if v != Version {
		return nil, fmt.Errorf("snapshot: unsupported format version %d (this build reads version %d)", v, Version)
	}
	return &Reader{r: r}, nil
}

// Section reads the next section, which must be named name, and hands its
// body to decode. Section-order mismatches are reported with both names, so
// a snapshot written by a different pipeline configuration fails loudly.
func (sr *Reader) Section(name string, decode func(io.Reader) error) error {
	var nameLen uint32
	if err := binary.Read(sr.r, binary.LittleEndian, &nameLen); err != nil {
		return fmt.Errorf("snapshot: read section header (want %q): %w", name, err)
	}
	if nameLen > 1024 {
		return fmt.Errorf("snapshot: section name length %d implausible (corrupt stream?)", nameLen)
	}
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(sr.r, nameBuf); err != nil {
		return fmt.Errorf("snapshot: read section name (want %q): %w", name, err)
	}
	var bodyLen uint64
	if err := binary.Read(sr.r, binary.LittleEndian, &bodyLen); err != nil {
		return fmt.Errorf("snapshot: read section %q length: %w", nameBuf, err)
	}
	if bodyLen > maxSectionSize {
		return fmt.Errorf("snapshot: section %q length %d exceeds limit (corrupt stream?)", nameBuf, bodyLen)
	}
	if got := string(nameBuf); got != name {
		return fmt.Errorf("snapshot: section order mismatch: want %q, found %q", name, got)
	}
	body := io.LimitReader(sr.r, int64(bodyLen))
	if err := decode(body); err != nil {
		return fmt.Errorf("snapshot: decode section %q: %w", name, err)
	}
	// Skip any bytes the decoder left unread so the stream stays aligned
	// for the next section (gob decoders may not consume trailing padding).
	if _, err := io.Copy(io.Discard, body); err != nil {
		return fmt.Errorf("snapshot: skip section %q remainder: %w", name, err)
	}
	return nil
}

// Gob reads the next section, which must be named name, gob-decoding its
// body into v.
func (sr *Reader) Gob(name string, v any) error {
	return sr.Section(name, func(r io.Reader) error {
		return gob.NewDecoder(r).Decode(v)
	})
}
