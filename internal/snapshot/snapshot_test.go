package snapshot

import (
	"bytes"
	"encoding/binary"
	"os"
	"strings"
	"testing"
)

// TestRejectVersion1Fixture pins the upgrade story for pre-symbol-table
// checkpoints: a version-1 PIERSNAP (checked in under testdata, as written by
// builds that predate the interned blocking index) must be rejected with a
// diagnosis that names version 1 and tells the operator to re-ingest — not
// with a decode error deep inside a section.
func TestRejectVersion1Fixture(t *testing.T) {
	raw, err := os.ReadFile("testdata/v1-header.piersnap")
	if err != nil {
		t.Fatal(err)
	}
	if got := string(raw[:len(Magic)]); got != Magic {
		t.Fatalf("fixture magic = %q, want %q (fixture corrupted?)", got, Magic)
	}
	if v := binary.LittleEndian.Uint32(raw[len(Magic):]); v != 1 {
		t.Fatalf("fixture version = %d, want 1 (fixture corrupted?)", v)
	}
	_, err = NewReader(bytes.NewReader(raw))
	if err == nil {
		t.Fatal("NewReader accepted a version-1 snapshot")
	}
	for _, want := range []string{"version 1", "symbol-interned", "re-ingest"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("version-1 error %q does not mention %q", err, want)
		}
	}
}

// TestRejectUnknownVersion keeps the generic mismatch path intact for
// versions this build has never heard of (e.g. a checkpoint from a newer
// build).
func TestRejectUnknownVersion(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(Magic)
	if err := binary.Write(&buf, binary.LittleEndian, Version+41); err != nil {
		t.Fatal(err)
	}
	_, err := NewReader(&buf)
	if err == nil || !strings.Contains(err.Error(), "unsupported format version") {
		t.Fatalf("unknown version error = %v, want unsupported-format-version", err)
	}
}

// TestRoundTripCurrentVersion writes a header with the current version and
// reads it back — the happy path the version checks must not break.
func TestRoundTripCurrentVersion(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	type payload struct{ N int }
	if err := w.Gob("meta", &payload{N: 7}); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var got payload
	if err := r.Gob("meta", &got); err != nil {
		t.Fatal(err)
	}
	if got.N != 7 {
		t.Fatalf("round trip N = %d, want 7", got.N)
	}
}
