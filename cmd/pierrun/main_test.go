package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"pier/internal/core"
	"pier/internal/dataset"
	"pier/internal/match"
	"pier/internal/stream"
)

// scrapeProm fetches url and parses the Prometheus text exposition into
// name -> value (labels folded into the key), failing the test on any
// unparseable line — this is the format check the endpoint must satisfy.
func scrapeProm(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]float64)
	for _, line := range strings.Split(string(body), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			// Comment lines must be well-formed HELP/TYPE directives.
			fields := strings.Fields(line)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				t.Fatalf("malformed exposition comment %q", line)
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("unparseable exposition line %q", line)
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		out[fields[0]] = v
	}
	return out
}

// TestMetricsEndpointDuringLiveRun is the acceptance test for the
// observability layer: a live windowed run serves /metrics over HTTP, the
// exposition parses, shows the required series, and the counters move as the
// stream progresses.
func TestMetricsEndpointDuringLiveRun(t *testing.T) {
	d := dataset.DA(0.05, 11)
	live := stream.LiveRun(core.NewIPES(core.DefaultConfig()), stream.LiveConfig{
		CleanClean:   true,
		MaxBlockSize: stream.DefaultMaxBlockSize,
		Matcher:      match.NewMatcher(match.JS),
		TickEvery:    time.Millisecond,
		Window:       40,
	})
	addr, shutdown, err := serveMetrics("127.0.0.1:0", live.Registry())
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	base := fmt.Sprintf("http://%s", addr)

	incs := d.Increments(12)
	for _, inc := range incs[:4] {
		live.Push(inc)
	}
	// Wait until the pipeline has executed work, then take the first scrape.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if c, _ := live.Stats(); c > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no comparisons after 5s")
		}
		time.Sleep(time.Millisecond)
	}
	first := scrapeProm(t, base+"/metrics")
	for _, name := range []string{
		"pier_comparisons_total",
		"pier_matches_total",
		"pier_k",
		"pier_pending",
		"pier_profiles_ingested_total",
		"pier_window_evictions_total",
		"pier_dedup_entries",
	} {
		if _, ok := first[name]; !ok {
			t.Errorf("/metrics missing required series %s", name)
		}
	}
	if first["pier_profiles_ingested_total"] == 0 {
		t.Error("profiles counter did not move after ingestion")
	}
	if first["pier_k"] <= 0 {
		t.Errorf("pier_k = %g, want > 0", first["pier_k"])
	}

	for _, inc := range incs[4:] {
		live.Push(inc)
	}
	res := live.Stop()
	second := scrapeProm(t, base+"/metrics")
	if second["pier_comparisons_total"] <= first["pier_comparisons_total"] {
		t.Errorf("comparisons counter did not move: %g -> %g",
			first["pier_comparisons_total"], second["pier_comparisons_total"])
	}
	if second["pier_profiles_ingested_total"] != float64(d.NumProfiles()) {
		t.Errorf("profiles counter = %g, want %d", second["pier_profiles_ingested_total"], d.NumProfiles())
	}
	if second["pier_window_evictions_total"] == 0 {
		t.Error("windowed run recorded no evictions")
	}
	if second["pier_comparisons_total"] != float64(res.Comparisons) {
		t.Errorf("endpoint comparisons %g != summary %d", second["pier_comparisons_total"], res.Comparisons)
	}

	// The expvar dump must be valid JSON and carry the same counters.
	resp, err := http.Get(base + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vars struct {
		Pier map[string]interface{} `json:"pier"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatalf("/debug/vars is not valid JSON: %v", err)
	}
	if got := vars.Pier["pier_comparisons_total"]; got != float64(res.Comparisons) {
		t.Errorf("expvar comparisons = %v, want %d", got, res.Comparisons)
	}
}

// writeFixtureCSV materializes a small seeded dataset as the CSV pierrun
// reads, returning its path.
func writeFixtureCSV(t *testing.T) string {
	t.Helper()
	d := dataset.DA(0.05, 55)
	path := filepath.Join(t.TempDir(), "fixture.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteCSV(f, d); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunExitCodes table-tests the CLI contract: usage errors exit 2 with a
// message on stderr, runtime failures exit 1, and a good run exits 0 —
// nothing panics.
func TestRunExitCodes(t *testing.T) {
	csv := writeFixtureCSV(t)
	cases := []struct {
		name   string
		args   []string
		code   int
		stderr string // required substring; empty = no requirement
	}{
		{"no input", []string{}, 2, "-in is required"},
		{"bad flag", []string{"-no-such-flag"}, 2, ""},
		{"unknown algorithm", []string{"-in", csv, "-algorithm", "I-BOGUS"}, 2, "unknown algorithm"},
		{"unknown matcher", []string{"-in", csv, "-matcher", "XX"}, 2, "unknown matcher"},
		{"checkpoint-every without checkpoint", []string{"-in", csv, "-checkpoint-every", "5"}, 2, "requires -checkpoint"},
		{"checkpoint with baseline", []string{"-in", csv, "-algorithm", "I-BASE", "-checkpoint", "x.snap"}, 2, "does not support"},
		{"missing input file", []string{"-in", "/no/such/file.csv"}, 1, "no such file"},
		{"missing restore file", []string{"-in", csv, "-restore", "/no/such.snap", "-rate", "0", "-increments", "4"}, 1, ""},
		{"good run", []string{"-in", csv, "-rate", "0", "-increments", "4"}, 0, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			got := run(tc.args, &stdout, &stderr)
			if got != tc.code {
				t.Fatalf("run(%v) = %d, want %d (stderr: %s)", tc.args, got, tc.code, stderr.String())
			}
			if tc.stderr != "" && !strings.Contains(stderr.String(), tc.stderr) {
				t.Errorf("stderr %q missing %q", stderr.String(), tc.stderr)
			}
			if tc.code != 0 && stderr.Len() == 0 {
				t.Error("failing run wrote nothing to stderr")
			}
		})
	}
}

// TestRunCheckpointRestoreCycle drives the CLI recovery workflow end to end:
// a partial run with periodic checkpoints, then a resumed run over the same
// input from the final snapshot, must converge to the same totals as one
// uninterrupted run.
func TestRunCheckpointRestoreCycle(t *testing.T) {
	csv := writeFixtureCSV(t)
	snap := filepath.Join(t.TempDir(), "run.snap")

	var full bytes.Buffer
	if code := run([]string{"-in", csv, "-rate", "0", "-increments", "8"}, &full, io.Discard); code != 0 {
		t.Fatalf("uninterrupted run exited %d", code)
	}

	var first bytes.Buffer
	args := []string{"-in", csv, "-rate", "0", "-increments", "8", "-checkpoint", snap, "-checkpoint-every", "2"}
	if code := run(args, &first, io.Discard); code != 0 {
		t.Fatalf("checkpointing run exited %d", code)
	}
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("checkpoint file not written: %v", err)
	}
	if _, err := os.Stat(snap + ".tmp"); !os.IsNotExist(err) {
		t.Error("temporary checkpoint file left behind")
	}

	var resumed bytes.Buffer
	if code := run([]string{"-in", csv, "-rate", "0", "-increments", "8", "-restore", snap}, &resumed, io.Discard); code != 0 {
		t.Fatalf("resumed run exited %d", code)
	}
	if !strings.Contains(resumed.String(), "skipping 8 increments") {
		t.Errorf("resumed run did not skip the snapshotted increments:\n%s", resumed.String())
	}

	// The final totals line must be identical across all three runs: the
	// full snapshot already contains the whole drained stream, so the
	// resumed run reports the same profiles/comparisons/matches.
	if tf, tr := totalsLine(t, full.String()), totalsLine(t, resumed.String()); tf != tr {
		t.Errorf("resumed totals %q differ from uninterrupted run %q", tr, tf)
	}
}

// totalsLine extracts the "profiles N, comparisons N, matches N" prefix of
// the summary line (elapsed varies run to run).
func totalsLine(t *testing.T, out string) string {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "profiles ") {
			if i := strings.LastIndex(line, ", elapsed"); i >= 0 {
				return line[:i]
			}
			return line
		}
	}
	t.Fatalf("no totals line in output:\n%s", out)
	return ""
}
