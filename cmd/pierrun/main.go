// Command pierrun streams a CSV dataset through a live PIER pipeline at a
// configurable rate and reports duplicates as they are found, plus a final
// summary (with pair completeness when a ground-truth file is supplied).
//
//	pierrun -in movies.csv -gt movies_gt.csv -algorithm I-PES -rate 32 -increments 100
//
// With -metrics ADDR the run also serves live pipeline metrics over HTTP:
// Prometheus text exposition at /metrics and the expvar JSON dump at
// /debug/vars, covering comparisons, matches, the adaptive K trajectory,
// queue depth, ingestion latency, and window evictions.
//
//	pierrun -in movies.csv -metrics :9090 &
//	curl localhost:9090/metrics
//
// With -cpuprofile/-memprofile the run writes pprof profiles for offline
// analysis with `go tool pprof`, and -parallelism sets the worker count of
// the parallel pipeline stages (0 = one worker per CPU, 1 = exact serial).
package main

import (
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"pier/internal/baseline"
	"pier/internal/core"
	"pier/internal/dataset"
	"pier/internal/match"
	"pier/internal/obsv"
	"pier/internal/stream"
)

// serveMetrics starts an HTTP server on addr exposing reg at /metrics
// (Prometheus text) and the expvar namespace at /debug/vars. It returns the
// bound listener address (useful with a ":0" addr) and a shutdown function.
func serveMetrics(addr string, reg *obsv.Registry) (net.Addr, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	reg.PublishExpvar("pier")
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return ln.Addr(), func() { srv.Close() }, nil
}

func main() {
	in := flag.String("in", "", "profiles CSV (as written by piergen)")
	gtPath := flag.String("gt", "", "optional ground-truth CSV for PC reporting")
	alg := flag.String("algorithm", "I-PES", "I-PCS, I-PBS, I-PES, or I-BASE")
	clean := flag.Bool("clean-clean", true, "Clean-Clean (two sources) vs Dirty ER")
	matcher := flag.String("matcher", "JS", "match function: JS or ED")
	rate := flag.Float64("rate", 16, "increments per second (0 = as fast as possible)")
	nIncs := flag.Int("increments", 100, "number of increments to split the stream into")
	window := flag.Int("window", 0, "profile window for unbounded streams (0 keeps everything)")
	metricsAddr := flag.String("metrics", "", "serve /metrics and /debug/vars on this address (e.g. :9090; empty disables)")
	parallelism := flag.Int("parallelism", 0, "worker count of the parallel pipeline stages (0 = one per CPU, 1 = exact serial)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit (go tool pprof)")
	verbose := flag.Bool("v", false, "print every match as it is found")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fatal(err)
			}
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
			f.Close()
		}()
	}

	if *in == "" {
		fmt.Fprintln(os.Stderr, "pierrun: -in is required (generate data with piergen)")
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	d, err := dataset.ReadCSV(f, *in, *clean)
	f.Close()
	if err != nil {
		fatal(err)
	}
	if *gtPath != "" {
		g, err := os.Open(*gtPath)
		if err != nil {
			fatal(err)
		}
		err = dataset.ReadGroundTruthCSV(g, d)
		g.Close()
		if err != nil {
			fatal(err)
		}
	}

	// One registry covers both parallel stages (candidate generation and
	// batch matching), so /metrics shows the whole pipeline.
	reg := obsv.NewRegistry()
	cfg := core.DefaultConfig()
	cfg.Parallelism = *parallelism
	cfg.Metrics = reg
	var strategy core.Strategy
	switch *alg {
	case "I-PCS":
		strategy = core.NewIPCS(cfg)
	case "I-PBS":
		strategy = core.NewIPBS(cfg)
	case "I-PES":
		strategy = core.NewIPES(cfg)
	case "I-BASE":
		strategy = baseline.NewIBase(cfg)
	default:
		fmt.Fprintf(os.Stderr, "pierrun: unknown algorithm %q\n", *alg)
		os.Exit(2)
	}
	kind := match.JS
	if *matcher == "ED" {
		kind = match.ED
	}

	start := time.Now()
	liveCfg := stream.LiveConfig{
		CleanClean:   *clean,
		MaxBlockSize: stream.DefaultMaxBlockSize,
		Matcher:      match.NewMatcher(kind),
		GroundTruth:  d.GroundTruth,
		Window:       *window,
		Parallelism:  *parallelism,
		Metrics:      reg,
	}
	found := 0
	liveCfg.OnMatch = func(m stream.LiveMatch) {
		found++
		if *verbose {
			fmt.Printf("%8s  match #%d: %d <-> %d (sim %.2f)\n",
				time.Since(start).Round(time.Millisecond), found, m.X.ID, m.Y.ID, m.Similarity)
		}
	}
	live := stream.LiveRun(strategy, liveCfg)

	if *metricsAddr != "" {
		addr, shutdown, err := serveMetrics(*metricsAddr, live.Registry())
		if err != nil {
			fatal(err)
		}
		defer shutdown()
		fmt.Printf("serving metrics on http://%s/metrics (expvar at /debug/vars)\n", addr)
	}

	incs := d.Increments(*nIncs)
	var interval time.Duration
	if *rate > 0 {
		interval = time.Duration(float64(time.Second) / *rate)
	}
	for i, inc := range incs {
		live.Push(inc)
		if interval > 0 {
			time.Sleep(interval)
		}
		if (i+1)%25 == 0 {
			s := live.Snapshot()
			fmt.Printf("%8s  %d/%d increments, %d comparisons, %d matches, K=%d, pending=%d\n",
				time.Since(start).Round(time.Millisecond), i+1, len(incs), s.Comparisons, s.Matches, s.K, s.Pending)
		}
	}
	res := live.Stop()
	fmt.Printf("\n%s over %s\n", *alg, d)
	fmt.Printf("profiles %d, comparisons %d, matches %d, elapsed %v\n",
		res.Profiles, res.Comparisons, res.Matches, res.Elapsed.Round(time.Millisecond))
	snap := live.Snapshot()
	if snap.WindowEvictions > 0 {
		fmt.Printf("window evictions %d, skipped evicted comparisons %d\n",
			snap.WindowEvictions, snap.SkippedEvicted)
	}
	if len(d.GroundTruth) > 0 {
		fmt.Printf("pair completeness: %.3f\n", res.Curve.FinalPC())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pierrun:", err)
	os.Exit(1)
}
