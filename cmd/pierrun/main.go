// Command pierrun streams a CSV dataset through a live PIER pipeline at a
// configurable rate and reports duplicates as they are found, plus a final
// summary (with pair completeness when a ground-truth file is supplied).
//
//	pierrun -in movies.csv -gt movies_gt.csv -algorithm I-PES -rate 32 -increments 100
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pier/internal/baseline"
	"pier/internal/core"
	"pier/internal/dataset"
	"pier/internal/match"
	"pier/internal/stream"
)

func main() {
	in := flag.String("in", "", "profiles CSV (as written by piergen)")
	gtPath := flag.String("gt", "", "optional ground-truth CSV for PC reporting")
	alg := flag.String("algorithm", "I-PES", "I-PCS, I-PBS, I-PES, or I-BASE")
	clean := flag.Bool("clean-clean", true, "Clean-Clean (two sources) vs Dirty ER")
	matcher := flag.String("matcher", "JS", "match function: JS or ED")
	rate := flag.Float64("rate", 16, "increments per second (0 = as fast as possible)")
	nIncs := flag.Int("increments", 100, "number of increments to split the stream into")
	verbose := flag.Bool("v", false, "print every match as it is found")
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "pierrun: -in is required (generate data with piergen)")
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	d, err := dataset.ReadCSV(f, *in, *clean)
	f.Close()
	if err != nil {
		fatal(err)
	}
	if *gtPath != "" {
		g, err := os.Open(*gtPath)
		if err != nil {
			fatal(err)
		}
		err = dataset.ReadGroundTruthCSV(g, d)
		g.Close()
		if err != nil {
			fatal(err)
		}
	}

	cfg := core.DefaultConfig()
	var strategy core.Strategy
	switch *alg {
	case "I-PCS":
		strategy = core.NewIPCS(cfg)
	case "I-PBS":
		strategy = core.NewIPBS(cfg)
	case "I-PES":
		strategy = core.NewIPES(cfg)
	case "I-BASE":
		strategy = baseline.NewIBase(cfg)
	default:
		fmt.Fprintf(os.Stderr, "pierrun: unknown algorithm %q\n", *alg)
		os.Exit(2)
	}
	kind := match.JS
	if *matcher == "ED" {
		kind = match.ED
	}

	start := time.Now()
	liveCfg := stream.LiveConfig{
		CleanClean:   *clean,
		MaxBlockSize: stream.DefaultMaxBlockSize,
		Matcher:      match.NewMatcher(kind),
		GroundTruth:  d.GroundTruth,
	}
	found := 0
	liveCfg.OnMatch = func(m stream.LiveMatch) {
		found++
		if *verbose {
			fmt.Printf("%8s  match #%d: %d <-> %d (sim %.2f)\n",
				time.Since(start).Round(time.Millisecond), found, m.X.ID, m.Y.ID, m.Similarity)
		}
	}
	live := stream.LiveRun(strategy, liveCfg)

	incs := d.Increments(*nIncs)
	var interval time.Duration
	if *rate > 0 {
		interval = time.Duration(float64(time.Second) / *rate)
	}
	for i, inc := range incs {
		live.Push(inc)
		if interval > 0 {
			time.Sleep(interval)
		}
		if (i+1)%25 == 0 {
			cmps, matches := live.Stats()
			fmt.Printf("%8s  %d/%d increments, %d comparisons, %d matches\n",
				time.Since(start).Round(time.Millisecond), i+1, len(incs), cmps, matches)
		}
	}
	res := live.Stop()
	fmt.Printf("\n%s over %s\n", *alg, d)
	fmt.Printf("profiles %d, comparisons %d, matches %d, elapsed %v\n",
		res.Profiles, res.Comparisons, res.Matches, res.Elapsed.Round(time.Millisecond))
	if len(d.GroundTruth) > 0 {
		fmt.Printf("pair completeness: %.3f\n", res.Curve.FinalPC())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pierrun:", err)
	os.Exit(1)
}
