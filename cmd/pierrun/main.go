// Command pierrun streams a CSV dataset through a live PIER pipeline at a
// configurable rate and reports duplicates as they are found, plus a final
// summary (with pair completeness when a ground-truth file is supplied).
//
//	pierrun -in movies.csv -gt movies_gt.csv -algorithm I-PES -rate 32 -increments 100
//
// With -metrics ADDR the run also serves live pipeline metrics over HTTP:
// Prometheus text exposition at /metrics and the expvar JSON dump at
// /debug/vars, covering comparisons, matches, the adaptive K trajectory,
// queue depth, ingestion latency, and window evictions.
//
//	pierrun -in movies.csv -metrics :9090 &
//	curl localhost:9090/metrics
//
// With -checkpoint FILE the run persists its full pipeline state — blocking
// index, prioritized queues, dedup and retry bookkeeping, adaptive-K
// estimators — to FILE on completion, and every N increments with
// -checkpoint-every N (each write is atomic: temp file + rename). A later
// run resumes from the snapshot with -restore FILE and executes exactly the
// comparisons the uninterrupted run would have:
//
//	pierrun -in movies.csv -checkpoint run.snap -checkpoint-every 25
//	pierrun -in movies_rest.csv -restore run.snap -checkpoint run.snap
//
// With -cpuprofile/-memprofile the run writes pprof profiles for offline
// analysis with `go tool pprof`, and -parallelism sets the worker count of
// the parallel pipeline stages (0 = one worker per CPU, 1 = exact serial).
//
// Exit codes: 0 on success, 2 for usage errors (bad flags, unknown
// algorithm, missing input), 1 for runtime failures (unreadable files,
// checkpoint errors).
package main

import (
	"expvar"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"pier/internal/baseline"
	"pier/internal/core"
	"pier/internal/dataset"
	"pier/internal/match"
	"pier/internal/obsv"
	"pier/internal/storage"
	"pier/internal/stream"
)

// serveMetrics starts an HTTP server on addr exposing reg at /metrics
// (Prometheus text) and the expvar namespace at /debug/vars. It returns the
// bound listener address (useful with a ":0" addr) and a shutdown function.
func serveMetrics(addr string, reg *obsv.Registry) (net.Addr, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	reg.PublishExpvar("pier")
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return ln.Addr(), func() { srv.Close() }, nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// Exit codes: usage errors (flags, unknown algorithm) are distinct from
// runtime failures so wrappers can tell a bad invocation from a bad run.
const (
	exitOK      = 0
	exitRuntime = 1
	exitUsage   = 2
)

// run is the testable body of the command: flags come from args, output goes
// to the given writers, and the exit code is returned instead of os.Exit.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pierrun", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "", "profiles CSV (as written by piergen)")
	gtPath := fs.String("gt", "", "optional ground-truth CSV for PC reporting")
	alg := fs.String("algorithm", "I-PES", "I-PCS, I-PBS, I-PES, I-SN, or I-BASE")
	clean := fs.Bool("clean-clean", true, "Clean-Clean (two sources) vs Dirty ER")
	matcher := fs.String("matcher", "JS", "match function: JS or ED")
	rate := fs.Float64("rate", 16, "increments per second (0 = as fast as possible)")
	nIncs := fs.Int("increments", 100, "number of increments to split the stream into")
	window := fs.Int("window", 0, "profile window for unbounded streams (0 keeps everything)")
	memBudget := fs.Int64("mem-budget", 0, "resident-byte budget for the blocking index and dedup set; cold shards spill to temp files (0 keeps everything in memory; results are identical for every value)")
	metricsAddr := fs.String("metrics", "", "serve /metrics and /debug/vars on this address (e.g. :9090; empty disables)")
	parallelism := fs.Int("parallelism", 0, "worker count of the parallel pipeline stages (0 = one per CPU, 1 = exact serial)")
	shards := fs.Int("shards", 0, "blocking-index shard count, rounded up to a power of two (0 = heuristic, 1 = unsharded; results are identical for every value)")
	ckptPath := fs.String("checkpoint", "", "write the pipeline state to this file on completion (and periodically with -checkpoint-every)")
	ckptEvery := fs.Int("checkpoint-every", 0, "also checkpoint every N increments (requires -checkpoint)")
	restorePath := fs.String("restore", "", "resume from a checkpoint file instead of starting fresh")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file at exit (go tool pprof)")
	verbose := fs.Bool("v", false, "print every match as it is found")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}

	fail := func(err error) int {
		fmt.Fprintln(stderr, "pierrun:", err)
		return exitRuntime
	}
	usage := func(msg string) int {
		fmt.Fprintln(stderr, "pierrun:", msg)
		return exitUsage
	}

	if *in == "" {
		return usage("-in is required (generate data with piergen)")
	}
	if *ckptEvery > 0 && *ckptPath == "" {
		return usage("-checkpoint-every requires -checkpoint")
	}
	if *ckptEvery < 0 {
		return usage("-checkpoint-every must be positive")
	}
	if *memBudget < 0 {
		return usage("-mem-budget must be non-negative")
	}

	// One registry covers both parallel stages (candidate generation and
	// batch matching), so /metrics shows the whole pipeline.
	reg := obsv.NewRegistry()
	cfg := core.DefaultConfig()
	cfg.Parallelism = *parallelism
	cfg.Metrics = reg
	var strategy core.Strategy
	switch *alg {
	case "I-PCS":
		strategy = core.NewIPCS(cfg)
	case "I-PBS":
		strategy = core.NewIPBS(cfg)
	case "I-PES":
		strategy = core.NewIPES(cfg)
	case "I-SN":
		strategy = core.NewISN(cfg, 0)
	case "I-BASE":
		strategy = baseline.NewIBase(cfg)
	default:
		return usage(fmt.Sprintf("unknown algorithm %q", *alg))
	}
	if *ckptPath != "" || *restorePath != "" {
		if _, ok := strategy.(core.Persistent); !ok {
			return usage(fmt.Sprintf("algorithm %q does not support -checkpoint/-restore", *alg))
		}
	}
	kind := match.JS
	switch *matcher {
	case "JS":
	case "ED":
		kind = match.ED
	default:
		return usage(fmt.Sprintf("unknown matcher %q (want JS or ED)", *matcher))
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fail(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(stderr, "pierrun:", err)
				return
			}
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(stderr, "pierrun:", err)
			}
			f.Close()
		}()
	}

	f, err := os.Open(*in)
	if err != nil {
		return fail(err)
	}
	d, err := dataset.ReadCSV(f, *in, *clean)
	f.Close()
	if err != nil {
		return fail(err)
	}
	if *gtPath != "" {
		g, err := os.Open(*gtPath)
		if err != nil {
			return fail(err)
		}
		err = dataset.ReadGroundTruthCSV(g, d)
		g.Close()
		if err != nil {
			return fail(err)
		}
	}

	start := time.Now()
	liveCfg := stream.LiveConfig{
		CleanClean:   *clean,
		MaxBlockSize: stream.DefaultMaxBlockSize,
		Matcher:      match.NewMatcher(kind),
		GroundTruth:  d.GroundTruth,
		Window:       *window,
		Parallelism:  *parallelism,
		Shards:       *shards,
		Metrics:      reg,
		Storage:      storage.Config{Budget: *memBudget},
	}
	found := 0
	liveCfg.OnMatch = func(m stream.LiveMatch) {
		found++
		if *verbose {
			fmt.Fprintf(stdout, "%8s  match #%d: %d <-> %d (sim %.2f)\n",
				time.Since(start).Round(time.Millisecond), found, m.X.ID, m.Y.ID, m.Similarity)
		}
	}

	var live *stream.Live
	if *restorePath != "" {
		rf, err := os.Open(*restorePath)
		if err != nil {
			return fail(err)
		}
		live, err = stream.RestoreLive(rf, strategy, liveCfg)
		rf.Close()
		if err != nil {
			return fail(fmt.Errorf("restore %s: %w", *restorePath, err))
		}
		s := live.Snapshot()
		fmt.Fprintf(stdout, "restored from %s: %d profiles, %d comparisons, %d matches\n",
			*restorePath, s.Profiles, s.Comparisons, s.Matches)
	} else {
		live = stream.LiveRun(strategy, liveCfg)
	}
	// Remove -mem-budget spill files on every exit path; Interrupt first so
	// Close sees a quiescent pipeline even when a runtime failure aborts the
	// run before Stop (both calls are idempotent no-ops after a clean Stop).
	defer func() {
		live.Interrupt()
		live.Close()
	}()

	// checkpoint writes the snapshot atomically: a crash mid-write leaves
	// the previous checkpoint intact.
	checkpoint := func() error {
		tmp := *ckptPath + ".tmp"
		cf, err := os.Create(tmp)
		if err != nil {
			return err
		}
		if _, err := live.Checkpoint(cf); err != nil {
			cf.Close()
			os.Remove(tmp)
			return err
		}
		if err := cf.Close(); err != nil {
			os.Remove(tmp)
			return err
		}
		return os.Rename(tmp, *ckptPath)
	}

	if *metricsAddr != "" {
		addr, shutdown, err := serveMetrics(*metricsAddr, live.Registry())
		if err != nil {
			return fail(err)
		}
		defer shutdown()
		fmt.Fprintf(stdout, "serving metrics on http://%s/metrics (expvar at /debug/vars)\n", addr)
	}

	incs := d.Increments(*nIncs)
	// When resuming over the same input, the first increments are already in
	// the snapshot: skip them so profile IDs stay aligned with the restored
	// state (the increment split is deterministic for a given -increments).
	skip := 0
	if *restorePath != "" {
		skip = live.Snapshot().Increments
		if skip > len(incs) {
			skip = len(incs)
		}
		if skip > 0 {
			fmt.Fprintf(stdout, "skipping %d increments already in the checkpoint\n", skip)
		}
	}
	var interval time.Duration
	if *rate > 0 {
		interval = time.Duration(float64(time.Second) / *rate)
	}
	for i, inc := range incs {
		if i < skip {
			continue
		}
		if err := live.Push(inc); err != nil {
			return fail(err)
		}
		if interval > 0 {
			time.Sleep(interval)
		}
		if *ckptEvery > 0 && (i+1)%*ckptEvery == 0 {
			if err := checkpoint(); err != nil {
				return fail(fmt.Errorf("checkpoint at increment %d: %w", i+1, err))
			}
		}
		if (i+1)%25 == 0 {
			s := live.Snapshot()
			fmt.Fprintf(stdout, "%8s  %d/%d increments, %d comparisons, %d matches, K=%d, pending=%d\n",
				time.Since(start).Round(time.Millisecond), i+1, len(incs), s.Comparisons, s.Matches, s.K, s.Pending)
		}
	}
	res := live.Stop()
	if err := live.Err(); err != nil {
		fmt.Fprintln(stderr, "pierrun: worker failure during the run:", err)
	}
	fmt.Fprintf(stdout, "\n%s over %s\n", *alg, d)
	fmt.Fprintf(stdout, "profiles %d, comparisons %d, matches %d, elapsed %v\n",
		res.Profiles, res.Comparisons, res.Matches, res.Elapsed.Round(time.Millisecond))
	snap := live.Snapshot()
	if snap.WindowEvictions > 0 {
		fmt.Fprintf(stdout, "window evictions %d, skipped evicted comparisons %d\n",
			snap.WindowEvictions, snap.SkippedEvicted)
	}
	if len(d.GroundTruth) > 0 {
		fmt.Fprintf(stdout, "pair completeness: %.3f\n", res.Curve.FinalPC())
	}
	if *ckptPath != "" {
		if err := checkpoint(); err != nil {
			return fail(fmt.Errorf("final checkpoint: %w", err))
		}
		fmt.Fprintf(stdout, "checkpoint written to %s\n", *ckptPath)
	}
	return exitOK
}
