package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pier/internal/dataset"
)

// TestPiergenSmoke generates a small dataset into a temp directory and reads
// both CSVs back through the same parsers pierrun uses, so the round trip is
// the one real users take.
func TestPiergenSmoke(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "movies.csv")
	gt := filepath.Join(dir, "movies_gt.csv")
	var stdout bytes.Buffer
	err := run([]string{"-dataset", "movies", "-scale", "0.002", "-seed", "3", "-out", out, "-gt", gt}, &stdout)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "wrote") {
		t.Fatalf("missing summary line in output: %q", stdout.String())
	}

	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	d, err := dataset.ReadCSV(f, "movies", true)
	if err != nil {
		t.Fatalf("generated profiles CSV does not parse: %v", err)
	}
	if len(d.Profiles) == 0 {
		t.Fatal("generated dataset has no profiles")
	}
	g, err := os.Open(gt)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if err := dataset.ReadGroundTruthCSV(g, d); err != nil {
		t.Fatalf("generated ground-truth CSV does not parse: %v", err)
	}
	if len(d.GroundTruth) == 0 {
		t.Fatal("generated dataset has no ground-truth pairs")
	}
}

func TestPiergenRejectsUnknownDataset(t *testing.T) {
	out := filepath.Join(t.TempDir(), "x.csv")
	err := run([]string{"-dataset", "nope", "-out", out, "-gt", out + ".gt"}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "unknown dataset") {
		t.Fatalf("unknown dataset accepted: %v", err)
	}
}
