// Command piergen generates the synthetic evaluation datasets as CSV files
// (profiles plus ground truth), for use with pierrun or external tools.
//
//	piergen -dataset movies -scale 0.1 -out movies.csv -gt movies_gt.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pier/internal/dataset"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("piergen", flag.ContinueOnError)
	name := fs.String("dataset", "da", "dataset to generate: da, movies, census, webdata")
	scale := fs.Float64("scale", 1, "scale relative to the paper's full size")
	seed := fs.Int64("seed", 1, "generation seed")
	out := fs.String("out", "", "profiles CSV output path (default <dataset>.csv)")
	gt := fs.String("gt", "", "ground-truth CSV output path (default <dataset>_gt.csv)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var d *dataset.Dataset
	switch *name {
	case "da":
		d = dataset.DA(*scale, *seed)
	case "movies":
		d = dataset.Movies(*scale, *seed)
	case "census":
		d = dataset.Census(*scale, *seed)
	case "webdata":
		d = dataset.WebData(*scale, *seed)
	default:
		return fmt.Errorf("unknown dataset %q (want da, movies, census, webdata)", *name)
	}
	if *out == "" {
		*out = *name + ".csv"
	}
	if *gt == "" {
		*gt = *name + "_gt.csv"
	}
	if err := writeFile(*out, d, dataset.WriteCSV); err != nil {
		return err
	}
	if err := writeFile(*gt, d, dataset.WriteGroundTruthCSV); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%s\nwrote %s and %s\n", d, *out, *gt)
	return nil
}

func writeFile(path string, d *dataset.Dataset, write func(w io.Writer, d *dataset.Dataset) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f, d); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
