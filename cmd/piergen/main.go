// Command piergen generates the synthetic evaluation datasets as CSV files
// (profiles plus ground truth), for use with pierrun or external tools.
//
//	piergen -dataset movies -scale 0.1 -out movies.csv -gt movies_gt.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pier/internal/dataset"
)

func main() {
	name := flag.String("dataset", "da", "dataset to generate: da, movies, census, webdata")
	scale := flag.Float64("scale", 1, "scale relative to the paper's full size")
	seed := flag.Int64("seed", 1, "generation seed")
	out := flag.String("out", "", "profiles CSV output path (default <dataset>.csv)")
	gt := flag.String("gt", "", "ground-truth CSV output path (default <dataset>_gt.csv)")
	flag.Parse()

	var d *dataset.Dataset
	switch *name {
	case "da":
		d = dataset.DA(*scale, *seed)
	case "movies":
		d = dataset.Movies(*scale, *seed)
	case "census":
		d = dataset.Census(*scale, *seed)
	case "webdata":
		d = dataset.WebData(*scale, *seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown dataset %q (want da, movies, census, webdata)\n", *name)
		os.Exit(2)
	}
	if *out == "" {
		*out = *name + ".csv"
	}
	if *gt == "" {
		*gt = *name + "_gt.csv"
	}
	if err := writeFile(*out, d, dataset.WriteCSV); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := writeFile(*gt, d, dataset.WriteGroundTruthCSV); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s\nwrote %s and %s\n", d, *out, *gt)
}

func writeFile(path string, d *dataset.Dataset, write func(w io.Writer, d *dataset.Dataset) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f, d); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
