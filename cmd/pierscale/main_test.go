package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestRunQuick exercises the whole harness end to end in -quick mode and
// validates the artifact's structure and internal consistency.
func TestRunQuick(t *testing.T) {
	out := filepath.Join(t.TempDir(), "scaling.json")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-quick", "-out", out}, &stdout, &stderr); code != exitOK {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if len(rep.GenScaling) != 2 {
		t.Fatalf("quick mode swept %d gen cells, want 2 (workers 1,2)", len(rep.GenScaling))
	}
	base := rep.GenScaling[0]
	for _, c := range rep.GenScaling {
		if c.ModeledSec != base.ModeledSec || c.Comparisons != base.Comparisons {
			t.Errorf("gen cell w=%d: modeled cost %v / %d comparisons diverged from w=%d (%v / %d) — scheduler not deterministic",
				c.Workers, c.ModeledSec, c.Comparisons, base.Workers, base.ModeledSec, base.Comparisons)
		}
		if c.ElapsedSec <= 0 || c.GenSec <= 0 {
			t.Errorf("gen cell w=%d: empty measurement (%v elapsed, %v gen)", c.Workers, c.ElapsedSec, c.GenSec)
		}
	}
	if len(rep.QueryScaling) != 4 {
		t.Fatalf("quick mode produced %d query cells, want 4 (2 paths × 2 worker counts)", len(rep.QueryScaling))
	}
	for _, c := range rep.QueryScaling {
		if c.Queries == 0 {
			t.Errorf("query cell %s w=%d answered no queries", c.Path, c.Workers)
		}
		if c.IngestedProf == 0 {
			t.Errorf("query cell %s w=%d saw no concurrent ingest — the cell measured a quiescent index", c.Path, c.Workers)
		}
	}
	if len(rep.QuerySpeedup) != 2 {
		t.Fatalf("quick mode produced %d speedup rows, want 2", len(rep.QuerySpeedup))
	}
	for _, s := range rep.QuerySpeedup {
		if s.LockedQPS <= 0 || s.SnapshotQPS <= 0 {
			t.Errorf("speedup row w=%d has empty throughput (locked %v, snapshot %v)", s.Workers, s.LockedQPS, s.SnapshotQPS)
		}
	}
	if rep.Meta.NumCPU <= 0 {
		t.Error("meta.num_cpu missing")
	}
}

func TestRunUsageErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-dataset", "nope"}, &stdout, &stderr); code != exitUsage {
		t.Fatalf("unknown dataset: exit %d, want %d", code, exitUsage)
	}
	if code := run([]string{"-workers", "0"}, &stdout, &stderr); code != exitUsage {
		t.Fatalf("bad workers: exit %d, want %d", code, exitUsage)
	}
	if code := run([]string{"-shape", "wavy"}, &stdout, &stderr); code != exitUsage {
		t.Fatalf("bad shape: exit %d, want %d", code, exitUsage)
	}
}
