// Command pierscale records the multi-core scaling behavior of the two
// parallel hot paths this repo optimizes: candidate generation (the pool's
// dynamic scheduler) and the online query path (RCU snapshots vs the locked
// baseline), as JSON for the benchmark artifacts (BENCH_scaling.json).
//
//	pierscale -dataset movies -scale 0.1 -workers 1,2,4 -qduration 2s
//
// Phase A sweeps worker counts over a full ingest (blocking + candidate
// generation) of a zipf-vocabulary dataset and records wall time, the
// pier_gen_seconds histogram sum, and the modeled generation cost — which
// must be identical across worker counts (the dynamic scheduler is
// deterministic), so the artifact doubles as an equivalence check.
//
// Phase B measures query throughput *under concurrent ingest*: a feeder
// pushes increments with pierload's arrival shapes while closed-loop readers
// hammer Live.Query, once against the mutex-guarded read path
// (LiveConfig.LockedQueryReads) and once against the published snapshots.
// The recorded speedup is the contention the lock-free read path removes.
//
// GOMAXPROCS is set to each cell's worker count. On a machine with fewer
// physical CPUs than workers the sweep time-shares instead of scaling; the
// artifact records runtime.NumCPU so readers can judge the curves.
//
// Exit codes: 0 on success, 2 for usage errors, 1 for runtime failures.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"pier/internal/blocking"
	"pier/internal/core"
	"pier/internal/dataset"
	"pier/internal/match"
	"pier/internal/obsv"
	"pier/internal/pool"
	"pier/internal/profile"
	"pier/internal/stream"
)

const (
	exitOK      = 0
	exitRuntime = 1
	exitUsage   = 2
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// report is the JSON artifact written to -out.
type report struct {
	Meta         meta          `json:"meta"`
	GenScaling   []genCell     `json:"gen_scaling"`
	QueryScaling []queryCell   `json:"query_scaling"`
	QuerySpeedup []speedupCell `json:"query_speedup"`
}

type meta struct {
	Dataset      string  `json:"dataset"`
	Scale        float64 `json:"scale"`
	Seed         int64   `json:"seed"`
	Increments   int     `json:"increments"`
	Shards       int     `json:"shards"`
	Workers      []int   `json:"workers"`
	Readers      int     `json:"readers"`
	Shape        string  `json:"shape"`
	QDurationSec float64 `json:"qduration_s"`
	TopK         int     `json:"topk"`
	NumCPU       int     `json:"num_cpu"`
	Note         string  `json:"note,omitempty"`
}

// genCell is one Phase A measurement: a full ingest at one worker count.
type genCell struct {
	Workers     int     `json:"workers"`
	ElapsedSec  float64 `json:"elapsed_s"`
	GenSec      float64 `json:"gen_seconds_sum"`
	ModeledSec  float64 `json:"modeled_cost_s"`
	Speedup     float64 `json:"speedup_vs_w1"`
	Comparisons int     `json:"queued_comparisons"`
	ProfilesIdx int     `json:"profiles_indexed"`
}

// queryCell is one Phase B measurement: closed-loop query throughput under
// concurrent ingest, for one read path at one worker count.
type queryCell struct {
	Path         string  `json:"path"` // "locked" or "snapshot"
	Workers      int     `json:"workers"`
	Readers      int     `json:"readers"`
	DurationSec  float64 `json:"duration_s"`
	Queries      int     `json:"queries"`
	QPS          float64 `json:"qps"`
	P50MS        float64 `json:"p50_ms"`
	P99MS        float64 `json:"p99_ms"`
	IngestedProf int     `json:"profiles_ingested_during_window"`
}

// speedupCell is the headline ratio: snapshot-path throughput over
// locked-path throughput at the same worker count.
type speedupCell struct {
	Workers     int     `json:"workers"`
	LockedQPS   float64 `json:"locked_qps"`
	SnapshotQPS float64 `json:"snapshot_qps"`
	Speedup     float64 `json:"speedup"`
}

// percentile returns the exact q-quantile (nearest-rank) of sorted samples.
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// parseWorkers parses a comma-separated worker-count list like "1,2,4".
func parseWorkers(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad worker count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty worker list")
	}
	return out, nil
}

// run is the testable body of the command, per the cmd convention.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pierscale", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dsName := fs.String("dataset", "movies", "synthetic dataset: da, movies, census, or webdata")
	scale := fs.Float64("scale", 0.1, "dataset scale factor")
	seed := fs.Int64("seed", 1, "deterministic seed for data and arrivals")
	nIncs := fs.Int("increments", 40, "number of increments to split the stream into")
	workersFlag := fs.String("workers", "1,2,4", "comma-separated worker counts to sweep")
	shards := fs.Int("shards", 0, "blocking index shard count (0 = heuristic)")
	readers := fs.Int("readers", 4, "closed-loop query goroutines in the query phase")
	qduration := fs.Duration("qduration", 2*time.Second, "measurement window per query cell")
	ingestRate := fs.Float64("ingest-rate", 50, "feeder rate in increments per second during the query phase")
	shapeFlag := fs.String("shape", "uniform", "feeder arrival shape: uniform, bursty, or zipf")
	topK := fs.Int("topk", 0, "candidates matched per query (0 = default 10, negative = all)")
	out := fs.String("out", "BENCH_scaling.json", "output JSON artifact (empty writes to stdout)")
	repeat := fs.Int("repeat", 3, "measured runs per gen cell (best is recorded)")
	quick := fs.Bool("quick", false, "CI smoke mode: tiny dataset, short windows")
	verbose := fs.Bool("v", false, "print per-cell progress")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}

	fail := func(err error) int {
		fmt.Fprintln(stderr, "pierscale:", err)
		return exitRuntime
	}
	usage := func(msg string) int {
		fmt.Fprintln(stderr, "pierscale:", msg)
		return exitUsage
	}

	if *quick {
		*scale = 0.02
		*nIncs = 8
		*qduration = 300 * time.Millisecond
		*workersFlag = "1,2"
		*repeat = 1
	}
	if *repeat < 1 {
		*repeat = 1
	}
	workers, err := parseWorkers(*workersFlag)
	if err != nil {
		return usage(err.Error())
	}
	shape, err := dataset.ParseShape(*shapeFlag)
	if err != nil {
		return usage(err.Error())
	}
	var d *dataset.Dataset
	switch *dsName {
	case "da":
		d = dataset.DA(*scale, *seed)
	case "movies":
		d = dataset.Movies(*scale, *seed)
	case "census":
		d = dataset.Census(*scale, *seed)
	case "webdata":
		d = dataset.WebData(*scale, *seed)
	default:
		return usage(fmt.Sprintf("unknown dataset %q (want da, movies, census, or webdata)", *dsName))
	}
	if *readers < 1 {
		return usage("-readers must be positive")
	}
	incs := d.Increments(*nIncs)

	origProcs := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(origProcs)

	rep := report{
		Meta: meta{
			Dataset:      *dsName,
			Scale:        *scale,
			Seed:         *seed,
			Increments:   len(incs),
			Shards:       *shards,
			Workers:      workers,
			Readers:      *readers,
			Shape:        string(shape),
			QDurationSec: qduration.Seconds(),
			TopK:         *topK,
			NumCPU:       runtime.NumCPU(),
		},
	}
	maxW := 0
	for _, w := range workers {
		if w > maxW {
			maxW = w
		}
	}
	if runtime.NumCPU() < maxW {
		rep.Meta.Note = fmt.Sprintf(
			"host has %d CPU(s) for a %d-worker sweep: cells beyond the CPU count time-share, so wall-clock speedups understate what the same code does on real cores",
			runtime.NumCPU(), maxW)
	}

	// Phase A: candidate-generation scaling. Each cell ingests the whole
	// dataset through a fresh collection + strategy at one worker count and
	// measures the wall time of blocking + generation — repeated, best run
	// recorded, after one untimed warmup so the first cell doesn't absorb
	// page-fault and allocator warmup. The modeled cost is the determinism
	// cross-check: the dynamic scheduler must produce the same comparisons
	// (hence the same modeled cost) at every worker count.
	genIngest := func(w int) (elapsed time.Duration, modeled time.Duration, genSum float64, queued int) {
		reg := obsv.NewRegistry()
		cfg := core.DefaultConfig()
		cfg.Parallelism = w
		cfg.Metrics = reg
		strategy := core.NewIPES(cfg)
		col := blocking.NewCollectionSharded(d.CleanClean, 0, nil, *shards)
		ingestPool := pool.New(w)
		t0 := time.Now()
		for _, inc := range incs {
			col.AddBatch(inc, ingestPool)
			modeled += strategy.UpdateIndex(col, inc)
		}
		elapsed = time.Since(t0)
		return elapsed, modeled, reg.Histogram("pier_gen_seconds", "", nil).Sum(), strategy.Pending()
	}
	runtime.GOMAXPROCS(workers[0])
	genIngest(workers[0]) // warmup, untimed
	var baseElapsed time.Duration
	var baseModeled time.Duration
	for _, w := range workers {
		runtime.GOMAXPROCS(w)
		var best genCell
		for rr := 0; rr < *repeat; rr++ {
			elapsed, modeled, genSum, queued := genIngest(w)
			if rr == 0 || elapsed < time.Duration(best.ElapsedSec*float64(time.Second)) {
				best = genCell{
					Workers:     w,
					ElapsedSec:  elapsed.Seconds(),
					GenSec:      genSum,
					ModeledSec:  modeled.Seconds(),
					Comparisons: queued,
					ProfilesIdx: d.NumProfiles(),
				}
			}
			if w == workers[0] && rr == 0 {
				baseModeled = modeled
			}
			if modeled != baseModeled {
				return fail(fmt.Errorf("phase A: modeled cost diverged at %d workers (%v vs %v) — scheduler is not deterministic", w, modeled, baseModeled))
			}
		}
		if w == workers[0] {
			baseElapsed = time.Duration(best.ElapsedSec * float64(time.Second))
		}
		best.Speedup = baseElapsed.Seconds() / best.ElapsedSec
		rep.GenScaling = append(rep.GenScaling, best)
		if *verbose {
			fmt.Fprintf(stdout, "pierscale: gen w=%d elapsed=%.1fms gen=%0.3fs speedup=%.2fx\n",
				w, best.ElapsedSec*1e3, best.GenSec, best.Speedup)
		}
	}

	// Phase B: query throughput under concurrent ingest, locked vs snapshot
	// read path at each worker count.
	for _, w := range workers {
		var cells [2]queryCell
		for i, locked := range []bool{true, false} {
			cell, err := queryPhase(d, incs, w, *shards, *readers, *topK, *qduration, shape, *ingestRate, *seed, locked)
			if err != nil {
				return fail(err)
			}
			cells[i] = cell
			rep.QueryScaling = append(rep.QueryScaling, cell)
			if *verbose {
				fmt.Fprintf(stdout, "pierscale: query %s w=%d qps=%.0f p50=%.2fms p99=%.2fms\n",
					cell.Path, w, cell.QPS, cell.P50MS, cell.P99MS)
			}
		}
		sp := speedupCell{Workers: w, LockedQPS: cells[0].QPS, SnapshotQPS: cells[1].QPS}
		if cells[0].QPS > 0 {
			sp.Speedup = cells[1].QPS / cells[0].QPS
		}
		rep.QuerySpeedup = append(rep.QuerySpeedup, sp)
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fail(err)
	}
	blob = append(blob, '\n')
	if *out == "" {
		stdout.Write(blob)
		return exitOK
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		return fail(err)
	}
	best := rep.QuerySpeedup[len(rep.QuerySpeedup)-1]
	fmt.Fprintf(stdout, "pierscale: wrote %s (snapshot read path %.2fx locked at %d workers)\n",
		*out, best.Speedup, best.Workers)
	return exitOK
}

// queryPhase runs one Phase B cell: pre-ingest half the dataset, then measure
// closed-loop query throughput for the window while a feeder keeps pushing —
// first the remaining real increments, then re-keyed clones so ingest
// pressure never stops before the window ends.
func queryPhase(d *dataset.Dataset, incs [][]*profile.Profile, w, shards, readers, topK int, window time.Duration, shape dataset.Shape, rate float64, seed int64, locked bool) (queryCell, error) {
	runtime.GOMAXPROCS(w)
	cfg := core.DefaultConfig()
	cfg.Parallelism = w
	l := stream.LiveRun(core.NewIPES(cfg), stream.LiveConfig{
		CleanClean:       d.CleanClean,
		Matcher:          match.NewMatcher(match.JS),
		TickEvery:        5 * time.Millisecond,
		Parallelism:      w,
		Shards:           shards,
		LockedQueryReads: locked,
	})
	path := "snapshot"
	if locked {
		path = "locked"
	}
	cell := queryCell{Path: path, Workers: w, Readers: readers, DurationSec: window.Seconds()}

	// Pre-ingest the first half so queries have a populated index.
	half := len(incs) / 2
	if half == 0 {
		half = len(incs)
	}
	for _, inc := range incs[:half] {
		if err := l.Push(inc); err != nil {
			return cell, err
		}
	}
	for l.Snapshot().Increments < half {
		time.Sleep(time.Millisecond)
	}
	startProfiles := l.Snapshot().Profiles

	// Feeder: keep pushing for the whole window — the remaining real
	// increments first, then fresh-ID clones — paced by the arrival shape.
	done := make(chan struct{})
	var feedWG sync.WaitGroup
	feedWG.Add(1)
	go func() {
		defer feedWG.Done()
		gaps := dataset.Arrivals(shape, 256, rate, seed+7)
		nextID := d.NumProfiles()
		gi, ii := 0, half
		for {
			select {
			case <-done:
				return
			case <-time.After(gaps[gi%len(gaps)]):
			}
			gi++
			var inc []*profile.Profile
			if ii < len(incs) {
				inc = incs[ii]
				ii++
			} else {
				// Clone a wrapped-around increment under fresh IDs: same
				// token distribution, never a duplicate profile ID.
				src := incs[ii%len(incs)]
				ii++
				inc = make([]*profile.Profile, len(src))
				for j, p := range src {
					inc[j] = &profile.Profile{ID: nextID, Source: p.Source, EntityKey: p.EntityKey, Attributes: p.Attributes}
					nextID++
				}
			}
			if err := l.Push(inc); err != nil {
				return
			}
		}
	}()

	// Closed-loop readers: each fires the next query as soon as the previous
	// one answers, probing random indexed profiles.
	var mu sync.Mutex
	var latencies []time.Duration
	var readWG sync.WaitGroup
	deadline := time.Now().Add(window)
	for r := 0; r < readers; r++ {
		readWG.Add(1)
		go func(seed int64) {
			defer readWG.Done()
			rng := rand.New(rand.NewSource(seed))
			var local []time.Duration
			for time.Now().Before(deadline) {
				src := d.Profiles[rng.Intn(len(d.Profiles))]
				probe := &profile.Profile{ID: -1, Source: src.Source, Attributes: src.Attributes}
				t0 := time.Now()
				if _, err := l.Query(context.Background(), probe, stream.QueryOptions{TopK: topK}); err != nil {
					return
				}
				local = append(local, time.Since(t0))
			}
			mu.Lock()
			latencies = append(latencies, local...)
			mu.Unlock()
		}(seed + int64(r) + 11)
	}
	readWG.Wait()
	close(done)
	feedWG.Wait()
	cell.IngestedProf = l.Snapshot().Profiles - startProfiles
	// Interrupt rather than Stop: draining every queued comparison is the
	// stream's job, not the benchmark's.
	l.Interrupt()

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	cell.Queries = len(latencies)
	cell.QPS = float64(len(latencies)) / window.Seconds()
	cell.P50MS = ms(percentile(latencies, 0.50))
	cell.P99MS = ms(percentile(latencies, 0.99))
	return cell, nil
}
