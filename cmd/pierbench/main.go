// Command pierbench regenerates the paper's tables and figures. Run with
// -exp to select an experiment (table1, fig1, fig2, fig4, fig5, fig6, fig7,
// fig8, fault, all) and -preset quick|standard for the dataset scales.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pier/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: table1, fig1, fig2, fig4, fig5, fig6, fig7, fig8, fault, all")
	preset := flag.String("preset", "standard", "dataset scale preset: quick or standard")
	seed := flag.Int64("seed", 1, "dataset generation seed")
	curves := flag.String("curves", "", "directory to dump full PC curves as CSV (optional)")
	flag.Parse()

	var opt experiments.Options
	switch *preset {
	case "quick":
		opt = experiments.Quick()
	case "standard":
		opt = experiments.Standard()
	default:
		fmt.Fprintf(os.Stderr, "unknown preset %q\n", *preset)
		os.Exit(2)
	}
	opt.Seed = *seed
	if *curves != "" {
		if err := os.MkdirAll(*curves, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		opt.CurveDir = *curves
	}

	runners := map[string]func(){
		"table1": func() { experiments.Table1(os.Stdout, opt) },
		"fig1":   func() { experiments.Fig1(os.Stdout, opt) },
		"fig2":   func() { experiments.Fig2(os.Stdout, opt) },
		"fig4":   func() { experiments.Fig4(os.Stdout, opt) },
		"fig5":   func() { experiments.Fig5(os.Stdout, opt) },
		"fig6":   func() { experiments.Fig6(os.Stdout, opt) },
		"fig7":   func() { experiments.Fig7(os.Stdout, opt) },
		"fig8":   func() { experiments.Fig8(os.Stdout, opt) },
		"fault":  func() { experiments.FaultTolerance(os.Stdout, opt) },
	}
	order := []string{"table1", "fig1", "fig2", "fig4", "fig5", "fig6", "fig7", "fig8", "fault"}
	if *exp == "all" {
		start := time.Now()
		for _, name := range order {
			runners[name]()
			fmt.Println()
		}
		fmt.Fprintf(os.Stderr, "all experiments done in %v\n", time.Since(start))
		return
	}
	run, ok := runners[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	run()
}
