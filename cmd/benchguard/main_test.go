package main

import (
	"io"
	"strings"
	"testing"
)

func TestStripProcs(t *testing.T) {
	cases := []struct{ in, want string }{
		{"BenchmarkFoo-8", "BenchmarkFoo"},
		{"BenchmarkStrategyUpdateIndex/I-PCS/p1-4", "BenchmarkStrategyUpdateIndex/I-PCS/p1"},
		{"BenchmarkShardedUpdateIndex/shards-4", "BenchmarkShardedUpdateIndex/shards"},
		{"BenchmarkFoo", "BenchmarkFoo"},
		{"BenchmarkFoo-x", "BenchmarkFoo-x"},
	}
	for _, c := range cases {
		if got := stripProcs(c.in); got != c.want {
			t.Errorf("stripProcs(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParseBench(t *testing.T) {
	// GOMAXPROCS=1 output: go test adds no -N suffix, so the trailing -4 in
	// shards-4 is part of the sub-benchmark name itself.
	input := strings.Join([]string{
		"goos: linux",
		"BenchmarkShardedUpdateIndex/shards-4         	       5	   1200000 ns/op	  500000 B/op	    2000 allocs/op",
		"BenchmarkStrategyUpdateIndex/I-PCS/p1         	       5	   1000000 ns/op	  400000 B/op	    1500 allocs/op",
		"BenchmarkStrategyUpdateIndex/I-PCS/p1         	       5	   1100000 ns/op	  400000 B/op	    1600 allocs/op",
		"PASS",
	}, "\n")
	got, ns, err := parseBench(strings.NewReader(input), io.Discard)
	if err != nil {
		t.Fatalf("parseBench: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %v", len(got), got)
	}
	if got["BenchmarkShardedUpdateIndex/shards-4"] != 2000 {
		t.Errorf("shards-4 allocs = %v, want 2000 (raw name must be preserved at parse time)", got["BenchmarkShardedUpdateIndex/shards-4"])
	}
	// Repeated benchmark (-count): worst observation wins.
	if got["BenchmarkStrategyUpdateIndex/I-PCS/p1"] != 1600 {
		t.Errorf("repeated benchmark allocs = %v, want the worst (1600)", got["BenchmarkStrategyUpdateIndex/I-PCS/p1"])
	}
	// ns/op is captured from the same lines, worst-wins as well.
	if ns["BenchmarkShardedUpdateIndex/shards-4"] != 1200000 {
		t.Errorf("shards-4 ns = %v, want 1200000", ns["BenchmarkShardedUpdateIndex/shards-4"])
	}
	if ns["BenchmarkStrategyUpdateIndex/I-PCS/p1"] != 1100000 {
		t.Errorf("repeated benchmark ns = %v, want the worst (1100000)", ns["BenchmarkStrategyUpdateIndex/I-PCS/p1"])
	}
}

func TestParseBenchWithoutBenchmem(t *testing.T) {
	// Plain -bench output (no -benchmem): ns/op still parses, allocs stays
	// empty — the ns gate must not depend on -benchmem.
	input := strings.Join([]string{
		"BenchmarkCounterIncAtomic-2    	   50000	        13.80 ns/op",
		"PASS",
	}, "\n")
	allocs, ns, err := parseBench(strings.NewReader(input), io.Discard)
	if err != nil {
		t.Fatalf("parseBench: %v", err)
	}
	if len(allocs) != 0 {
		t.Errorf("allocs parsed from a non-benchmem line: %v", allocs)
	}
	if ns["BenchmarkCounterIncAtomic-2"] != 13.80 {
		t.Errorf("ns = %v, want 13.80 (fractional ns/op must parse)", ns["BenchmarkCounterIncAtomic-2"])
	}
}

func TestResolveNamesSingleCore(t *testing.T) {
	// GOMAXPROCS=1 (this repo's CI): no procs suffix, and a sub-benchmark
	// whose own name ends in -N must NOT be stripped — the old code cut
	// shards-4 down to shards and the gate reported it missing.
	base := map[string]float64{
		"BenchmarkShardedUpdateIndex/shards-4":  2000,
		"BenchmarkStrategyUpdateIndex/I-PCS/p1": 1500,
	}
	got := map[string]float64{
		"BenchmarkShardedUpdateIndex/shards-4":  2000,
		"BenchmarkStrategyUpdateIndex/I-PCS/p1": 1500,
	}
	resolved := resolveNames(got, base)
	for name, want := range base {
		if resolved[name] != want {
			t.Errorf("resolved[%q] = %v, want %v (resolved map: %v)", name, resolved[name], want, resolved)
		}
	}
	if gate(base, resolved, 0.10, "allocs/op", io.Discard, io.Discard) {
		t.Error("gate failed on exact-match single-core names; no benchmark should be missing")
	}
}

func TestResolveNamesMultiCore(t *testing.T) {
	// GOMAXPROCS=8: go test appends -8; the raw names miss the baseline and
	// the stripped forms hit it. The sub-benchmark with its own -4 gets the
	// procs suffix on top: shards-4-8 → shards-4.
	base := map[string]float64{
		"BenchmarkShardedUpdateIndex/shards-4":  2000,
		"BenchmarkStrategyUpdateIndex/I-PCS/p1": 1500,
	}
	got := map[string]float64{
		"BenchmarkShardedUpdateIndex/shards-4-8":  2100,
		"BenchmarkStrategyUpdateIndex/I-PCS/p1-8": 1400,
	}
	resolved := resolveNames(got, base)
	if resolved["BenchmarkShardedUpdateIndex/shards-4"] != 2100 {
		t.Errorf("shards-4-8 did not resolve to shards-4: %v", resolved)
	}
	if resolved["BenchmarkStrategyUpdateIndex/I-PCS/p1"] != 1400 {
		t.Errorf("p1-8 did not resolve to p1: %v", resolved)
	}
	if gate(base, resolved, 0.10, "allocs/op", io.Discard, io.Discard) {
		t.Error("gate failed on multi-core names within the regress limit")
	}
}

func TestResolveNamesUnknownKeptRaw(t *testing.T) {
	base := map[string]float64{"BenchmarkGuarded": 100}
	got := map[string]float64{
		"BenchmarkGuarded":     90,
		"BenchmarkUnguarded-2": 5,
	}
	resolved := resolveNames(got, base)
	if _, ok := resolved["BenchmarkUnguarded-2"]; !ok {
		t.Errorf("unguarded name stripped even though neither form is a baseline key: %v", resolved)
	}
}

func TestGateRegressionAndMissing(t *testing.T) {
	base := map[string]float64{
		"BenchmarkA": 100,
		"BenchmarkB": 100,
	}
	// A regressed past 10%, B is missing entirely.
	resolved := map[string]float64{"BenchmarkA": 120}
	var errOut strings.Builder
	if !gate(base, resolved, 0.10, "allocs/op", io.Discard, &errOut) {
		t.Fatal("gate passed despite a regression and a missing benchmark")
	}
	if !strings.Contains(errOut.String(), "BenchmarkA") || !strings.Contains(errOut.String(), "BenchmarkB") {
		t.Errorf("gate output missing verdicts: %q", errOut.String())
	}

	// Within the limit: passes.
	if gate(base, map[string]float64{"BenchmarkA": 105, "BenchmarkB": 100}, 0.10, "allocs/op", io.Discard, io.Discard) {
		t.Error("gate failed within the regress limit")
	}
}
