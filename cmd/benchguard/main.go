// Command benchguard is the allocation-regression gate for the benchmark
// smoke job: it reads `go test -bench ... -benchmem` output on stdin,
// extracts allocs/op per benchmark, and compares each against a committed
// baseline (the guard_baseline section of BENCH_intern.json). Allocations are
// the guarded metric because they are stable across runner hardware — ns/op
// on shared CI machines is far too noisy to gate on, but an allocs/op jump is
// a real code change every time.
//
// Usage:
//
//	go test -run TestNothing -bench BenchmarkStrategyUpdateIndex -benchtime=5x -benchmem . | \
//	    go run ./cmd/benchguard -baseline BENCH_intern.json
//
// The run fails (exit 1) when any guarded benchmark's allocs/op exceeds its
// baseline by more than -max-regress (default 10%), and when a guarded
// benchmark is missing from the input — a gate that silently stops measuring
// is worse than no gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// baselineFile is the slice of BENCH_intern.json the guard consumes; other
// sections are recording, not gating.
type baselineFile struct {
	GuardBaseline map[string]float64 `json:"guard_baseline"`
}

// benchLine matches one -benchmem result line, capturing the benchmark name
// (with sub-benchmark path, GOMAXPROCS suffix still attached) and allocs/op.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+.*?\s(\d+)\s+allocs/op`)

// stripProcs removes the trailing -GOMAXPROCS from a benchmark name, so
// baselines are portable across runner core counts. It must only be applied
// when the raw name does not itself match a baseline key: go test omits the
// suffix entirely when GOMAXPROCS=1, and a sub-benchmark whose own name ends
// in -N (e.g. BenchmarkShardedUpdateIndex/shards-4) would otherwise be
// mangled into a name the baseline has never heard of. resolveNames applies
// that policy; stripProcs is just the mechanical suffix cut.
func stripProcs(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// parseBench scans -benchmem output, echoing every line to echo (so CI logs
// keep the raw numbers) and collecting allocs/op per raw benchmark name.
// When -count repeats a benchmark the worst (highest) observation wins.
func parseBench(r io.Reader, echo io.Writer) (map[string]float64, error) {
	got := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(echo, line)
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		allocs, _ := strconv.ParseFloat(m[2], 64)
		if prev, ok := got[m[1]]; !ok || allocs > prev {
			got[m[1]] = allocs
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return got, nil
}

// resolveNames maps raw benchmark names onto baseline keys. A raw name that
// is itself a baseline key is taken verbatim — never stripped, so a
// legitimate trailing -N in a sub-benchmark name (shards-4) survives even on
// single-core runners where go test adds no procs suffix. Only when the raw
// name misses the baseline is the -GOMAXPROCS suffix stripped, and the
// stripped form is used only if it actually hits a baseline key. Names that
// match nothing are kept raw (they are simply unguarded). When stripping
// collapses several raw names onto one key, the worst observation wins.
func resolveNames(got, base map[string]float64) map[string]float64 {
	resolved := make(map[string]float64, len(got))
	for raw, v := range got {
		name := raw
		if _, inBase := base[raw]; !inBase {
			if s := stripProcs(raw); s != raw {
				if _, ok := base[s]; ok {
					name = s
				}
			}
		}
		if prev, ok := resolved[name]; !ok || v > prev {
			resolved[name] = v
		}
	}
	return resolved
}

// gate compares each guarded baseline entry against the resolved
// observations, writing verdicts to out/errOut. It returns true when any
// guarded benchmark regressed past maxRegress or is missing from the input.
func gate(base, resolved map[string]float64, maxRegress float64, out, errOut io.Writer) bool {
	failed := false
	for name, want := range base {
		have, ok := resolved[name]
		if !ok {
			fmt.Fprintf(errOut, "benchguard: FAIL %s: guarded benchmark missing from input\n", name)
			failed = true
			continue
		}
		limit := want * (1 + maxRegress)
		switch {
		case have > limit:
			fmt.Fprintf(errOut, "benchguard: FAIL %s: %.0f allocs/op exceeds baseline %.0f by more than %.0f%% (limit %.0f)\n",
				name, have, want, maxRegress*100, limit)
			failed = true
		case have < want:
			fmt.Fprintf(out, "benchguard: ok   %s: %.0f allocs/op (improved from baseline %.0f — consider re-recording)\n", name, have, want)
		default:
			fmt.Fprintf(out, "benchguard: ok   %s: %.0f allocs/op (baseline %.0f, limit %.0f)\n", name, have, want, limit)
		}
	}
	return failed
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_intern.json", "JSON file with a guard_baseline map of benchmark name to allocs/op")
	maxRegress := flag.Float64("max-regress", 0.10, "maximum allowed fractional allocs/op increase over baseline")
	flag.Parse()

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	var base baselineFile
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: parse %s: %v\n", *baselinePath, err)
		os.Exit(2)
	}
	if len(base.GuardBaseline) == 0 {
		fmt.Fprintf(os.Stderr, "benchguard: %s has no guard_baseline entries\n", *baselinePath)
		os.Exit(2)
	}

	got, err := parseBench(os.Stdin, os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: read stdin: %v\n", err)
		os.Exit(2)
	}
	resolved := resolveNames(got, base.GuardBaseline)
	if gate(base.GuardBaseline, resolved, *maxRegress, os.Stdout, os.Stderr) {
		os.Exit(1)
	}
}
