// Command benchguard is the performance-regression gate for the benchmark
// smoke job: it reads `go test -bench ... -benchmem` output on stdin,
// extracts allocs/op and ns/op per benchmark, and compares each against a
// committed baseline (the guard_baseline and guard_ns_baseline sections of
// BENCH_intern.json). Allocations are the primary guarded metric because they
// are stable across runner hardware — an allocs/op jump is a real code change
// every time. ns/op is gated too, but with a deliberately generous limit
// (default 200% over baseline): on shared CI machines wall time is noisy, so
// the ns gate only catches catastrophic slowdowns — an accidental O(n²), a
// lock on the hot path — not ordinary jitter.
//
// Usage:
//
//	go test -run TestNothing -bench BenchmarkStrategyUpdateIndex -benchtime=5x -benchmem . | \
//	    go run ./cmd/benchguard -baseline BENCH_intern.json
//
// The run fails (exit 1) when any guarded benchmark exceeds its baseline by
// more than -max-regress (allocs/op, default 10%) or -max-ns-regress (ns/op,
// default 200%), and when a guarded benchmark is missing from the input — a
// gate that silently stops measuring is worse than no gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// baselineFile is the slice of BENCH_intern.json the guard consumes; other
// sections are recording, not gating.
type baselineFile struct {
	GuardBaseline   map[string]float64 `json:"guard_baseline"`
	GuardNsBaseline map[string]float64 `json:"guard_ns_baseline"`
}

// benchAllocs matches one -benchmem result line, capturing the benchmark name
// (with sub-benchmark path, GOMAXPROCS suffix still attached) and allocs/op.
var benchAllocs = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+.*?\s(\d+)\s+allocs/op`)

// benchNs matches any benchmark result line's ns/op column (present with or
// without -benchmem).
var benchNs = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.]+)\s+ns/op`)

// stripProcs removes the trailing -GOMAXPROCS from a benchmark name, so
// baselines are portable across runner core counts. It must only be applied
// when the raw name does not itself match a baseline key: go test omits the
// suffix entirely when GOMAXPROCS=1, and a sub-benchmark whose own name ends
// in -N (e.g. BenchmarkShardedUpdateIndex/shards-4) would otherwise be
// mangled into a name the baseline has never heard of. resolveNames applies
// that policy; stripProcs is just the mechanical suffix cut.
func stripProcs(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// parseBench scans benchmark output, echoing every line to echo (so CI logs
// keep the raw numbers) and collecting allocs/op and ns/op per raw benchmark
// name. When -count repeats a benchmark the worst (highest) observation wins.
func parseBench(r io.Reader, echo io.Writer) (allocs, ns map[string]float64, err error) {
	allocs = make(map[string]float64)
	ns = make(map[string]float64)
	worst := func(m map[string]float64, name string, v float64) {
		if prev, ok := m[name]; !ok || v > prev {
			m[name] = v
		}
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(echo, line)
		if m := benchAllocs.FindStringSubmatch(line); m != nil {
			v, _ := strconv.ParseFloat(m[2], 64)
			worst(allocs, m[1], v)
		}
		if m := benchNs.FindStringSubmatch(line); m != nil {
			v, _ := strconv.ParseFloat(m[2], 64)
			worst(ns, m[1], v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	return allocs, ns, nil
}

// resolveNames maps raw benchmark names onto baseline keys. A raw name that
// is itself a baseline key is taken verbatim — never stripped, so a
// legitimate trailing -N in a sub-benchmark name (shards-4) survives even on
// single-core runners where go test adds no procs suffix. Only when the raw
// name misses the baseline is the -GOMAXPROCS suffix stripped, and the
// stripped form is used only if it actually hits a baseline key. Names that
// match nothing are kept raw (they are simply unguarded). When stripping
// collapses several raw names onto one key, the worst observation wins.
func resolveNames(got, base map[string]float64) map[string]float64 {
	resolved := make(map[string]float64, len(got))
	for raw, v := range got {
		name := raw
		if _, inBase := base[raw]; !inBase {
			if s := stripProcs(raw); s != raw {
				if _, ok := base[s]; ok {
					name = s
				}
			}
		}
		if prev, ok := resolved[name]; !ok || v > prev {
			resolved[name] = v
		}
	}
	return resolved
}

// gate compares each guarded baseline entry against the resolved
// observations, writing verdicts to out/errOut. unit labels the metric in
// messages ("allocs/op" or "ns/op"). It returns true when any guarded
// benchmark regressed past maxRegress or is missing from the input.
func gate(base, resolved map[string]float64, maxRegress float64, unit string, out, errOut io.Writer) bool {
	failed := false
	for name, want := range base {
		have, ok := resolved[name]
		if !ok {
			fmt.Fprintf(errOut, "benchguard: FAIL %s: guarded benchmark missing from input\n", name)
			failed = true
			continue
		}
		limit := want * (1 + maxRegress)
		switch {
		case have > limit:
			fmt.Fprintf(errOut, "benchguard: FAIL %s: %.0f %s exceeds baseline %.0f by more than %.0f%% (limit %.0f)\n",
				name, have, unit, want, maxRegress*100, limit)
			failed = true
		case have < want:
			fmt.Fprintf(out, "benchguard: ok   %s: %.0f %s (improved from baseline %.0f — consider re-recording)\n", name, have, unit, want)
		default:
			fmt.Fprintf(out, "benchguard: ok   %s: %.0f %s (baseline %.0f, limit %.0f)\n", name, have, unit, want, limit)
		}
	}
	return failed
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_intern.json", "JSON file with guard_baseline (allocs/op) and/or guard_ns_baseline (ns/op) maps")
	maxRegress := flag.Float64("max-regress", 0.10, "maximum allowed fractional allocs/op increase over baseline")
	maxNsRegress := flag.Float64("max-ns-regress", 2.00, "maximum allowed fractional ns/op increase over baseline (generous: wall time is noisy)")
	flag.Parse()

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	var base baselineFile
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: parse %s: %v\n", *baselinePath, err)
		os.Exit(2)
	}
	if len(base.GuardBaseline) == 0 && len(base.GuardNsBaseline) == 0 {
		fmt.Fprintf(os.Stderr, "benchguard: %s has neither guard_baseline nor guard_ns_baseline entries\n", *baselinePath)
		os.Exit(2)
	}

	allocs, ns, err := parseBench(os.Stdin, os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: read stdin: %v\n", err)
		os.Exit(2)
	}
	failed := false
	if len(base.GuardBaseline) > 0 {
		resolved := resolveNames(allocs, base.GuardBaseline)
		failed = gate(base.GuardBaseline, resolved, *maxRegress, "allocs/op", os.Stdout, os.Stderr) || failed
	}
	if len(base.GuardNsBaseline) > 0 {
		resolved := resolveNames(ns, base.GuardNsBaseline)
		failed = gate(base.GuardNsBaseline, resolved, *maxNsRegress, "ns/op", os.Stdout, os.Stderr) || failed
	}
	if failed {
		os.Exit(1)
	}
}
