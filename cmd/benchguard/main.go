// Command benchguard is the allocation-regression gate for the benchmark
// smoke job: it reads `go test -bench ... -benchmem` output on stdin,
// extracts allocs/op per benchmark, and compares each against a committed
// baseline (the guard_baseline section of BENCH_intern.json). Allocations are
// the guarded metric because they are stable across runner hardware — ns/op
// on shared CI machines is far too noisy to gate on, but an allocs/op jump is
// a real code change every time.
//
// Usage:
//
//	go test -run TestNothing -bench BenchmarkStrategyUpdateIndex -benchtime=5x -benchmem . | \
//	    go run ./cmd/benchguard -baseline BENCH_intern.json
//
// The run fails (exit 1) when any guarded benchmark's allocs/op exceeds its
// baseline by more than -max-regress (default 10%), and when a guarded
// benchmark is missing from the input — a gate that silently stops measuring
// is worse than no gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// baselineFile is the slice of BENCH_intern.json the guard consumes; other
// sections are recording, not gating.
type baselineFile struct {
	GuardBaseline map[string]float64 `json:"guard_baseline"`
}

// benchLine matches one -benchmem result line, capturing the benchmark name
// (with sub-benchmark path, GOMAXPROCS suffix still attached) and allocs/op.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+.*?\s(\d+)\s+allocs/op`)

// stripProcs removes the trailing -GOMAXPROCS from a benchmark name, so
// baselines are portable across runner core counts.
func stripProcs(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_intern.json", "JSON file with a guard_baseline map of benchmark name to allocs/op")
	maxRegress := flag.Float64("max-regress", 0.10, "maximum allowed fractional allocs/op increase over baseline")
	flag.Parse()

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	var base baselineFile
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: parse %s: %v\n", *baselinePath, err)
		os.Exit(2)
	}
	if len(base.GuardBaseline) == 0 {
		fmt.Fprintf(os.Stderr, "benchguard: %s has no guard_baseline entries\n", *baselinePath)
		os.Exit(2)
	}

	got := make(map[string]float64)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the output through so CI logs keep the raw numbers
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		allocs, _ := strconv.ParseFloat(m[2], 64)
		// Keep the worst (highest) observation when -count repeats a benchmark.
		name := stripProcs(m[1])
		if prev, ok := got[name]; !ok || allocs > prev {
			got[name] = allocs
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: read stdin: %v\n", err)
		os.Exit(2)
	}

	failed := false
	for name, want := range base.GuardBaseline {
		have, ok := got[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchguard: FAIL %s: guarded benchmark missing from input\n", name)
			failed = true
			continue
		}
		limit := want * (1 + *maxRegress)
		switch {
		case have > limit:
			fmt.Fprintf(os.Stderr, "benchguard: FAIL %s: %.0f allocs/op exceeds baseline %.0f by more than %.0f%% (limit %.0f)\n",
				name, have, want, *maxRegress*100, limit)
			failed = true
		case have < want:
			fmt.Printf("benchguard: ok   %s: %.0f allocs/op (improved from baseline %.0f — consider re-recording)\n", name, have, want)
		default:
			fmt.Printf("benchguard: ok   %s: %.0f allocs/op (baseline %.0f, limit %.0f)\n", name, have, want, limit)
		}
	}
	if failed {
		os.Exit(1)
	}
}
