package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestRunSmoke exercises the full load-generator path on a tiny workload and
// checks the JSON artifact is well-formed and internally consistent.
func TestRunSmoke(t *testing.T) {
	out := filepath.Join(t.TempDir(), "serving.json")
	var stdout, stderr strings.Builder
	code := run([]string{
		"-dataset", "da", "-scale", "0.02", "-increments", "5",
		"-rate", "100", "-qps", "100", "-duration", "500ms",
		"-shape", "bursty", "-tenants", "2", "-out", out, "-v",
	}, &stdout, &stderr)
	if code != exitOK {
		t.Fatalf("run exited %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}

	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("artifact missing: %v", err)
	}
	var rep report
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatalf("artifact not valid JSON: %v", err)
	}
	s := rep.Serving
	if s.Queries <= 0 {
		t.Fatal("no queries issued")
	}
	if got := s.Accepted + s.RejectedOverload + s.RejectedRateLimit + s.Errors; got != s.Queries {
		t.Errorf("outcome counts sum to %d, want %d", got, s.Queries)
	}
	if s.Accepted == 0 {
		t.Error("every query was rejected on an unloaded pipeline")
	}
	if s.Errors > 0 {
		t.Errorf("%d queries failed", s.Errors)
	}
	if s.P50MS > s.P99MS || s.P99MS > s.MaxMS {
		t.Errorf("percentiles not monotone: p50=%.3f p99=%.3f max=%.3f", s.P50MS, s.P99MS, s.MaxMS)
	}
	if rep.Ingest.Profiles <= 0 {
		t.Error("no profiles ingested")
	}
}

func TestRunUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-dataset", "nope"},
		{"-shape", "poisson"},
		{"-qps", "0"},
		{"-tenants", "0"},
		{"-algorithm", "NOT-AN-ALG"},
	}
	for _, args := range cases {
		var stdout, stderr strings.Builder
		if code := run(args, &stdout, &stderr); code != exitUsage {
			t.Errorf("run(%v) = %d, want %d (stderr: %s)", args, code, exitUsage, stderr.String())
		}
	}
}

func TestPercentile(t *testing.T) {
	samples := make([]time.Duration, 100)
	for i := range samples {
		samples[i] = time.Duration(i+1) * time.Millisecond
	}
	if got := percentile(samples, 0.50); got != 50*time.Millisecond {
		t.Errorf("p50 = %v, want 50ms", got)
	}
	if got := percentile(samples, 0.99); got != 99*time.Millisecond {
		t.Errorf("p99 = %v, want 99ms", got)
	}
	if got := percentile(samples, 1.0); got != 100*time.Millisecond {
		t.Errorf("p100 = %v, want 100ms", got)
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("empty percentile = %v, want 0", got)
	}
}
