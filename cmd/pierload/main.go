// Command pierload is the serving-path load generator: it ingests a synthetic
// dataset into a live pipeline while firing an open-loop stream of point
// queries (Pipeline.Query) at it, and records the achieved SLOs — latency
// percentiles, admission counts, match counts — as JSON for the benchmark
// artifacts (BENCH_serving.json).
//
//	pierload -dataset da -scale 0.1 -qps 500 -duration 5s -shape bursty
//
// The query stream is open-loop: arrivals follow the configured shape
// (uniform, bursty, or zipf inter-arrival gaps from internal/dataset) and are
// issued regardless of how fast earlier queries complete, the way real
// clients behave. Probes and tenants are drawn with Zipf popularity — hot
// entities and heavy tenants dominate, mirroring production skew. Overload
// and rate-limit rejections are counted, not retried: fast-fail is the
// behavior under test.
//
// Latency percentiles are computed exactly from the full sorted sample, not
// from histogram buckets — the load generator is the reference the serving
// histograms (pier_query_seconds) are judged against.
//
// Exit codes: 0 on success, 2 for usage errors, 1 for runtime failures.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"pier"
	"pier/internal/dataset"
	"pier/internal/profile"
)

const (
	exitOK      = 0
	exitRuntime = 1
	exitUsage   = 2
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// report is the JSON artifact written to -out.
type report struct {
	Meta    meta    `json:"meta"`
	Ingest  ingest  `json:"ingest"`
	Serving serving `json:"serving"`
}

type meta struct {
	Dataset     string  `json:"dataset"`
	Scale       float64 `json:"scale"`
	Algorithm   string  `json:"algorithm"`
	Increments  int     `json:"increments"`
	IngestRate  float64 `json:"ingest_rate_per_s"`
	Shape       string  `json:"shape"`
	QPS         float64 `json:"qps"`
	DurationSec float64 `json:"duration_s"`
	Seed        int64   `json:"seed"`
	TopK        int     `json:"topk"`
	MaxInFlight int     `json:"max_inflight"`
	QueryRate   float64 `json:"query_rate_per_tenant"`
	Tenants     int     `json:"tenants"`
}

type ingest struct {
	Profiles    int     `json:"profiles"`
	Increments  int     `json:"increments"`
	ElapsedMS   float64 `json:"elapsed_ms"`
	Comparisons int     `json:"comparisons"`
	Matches     int     `json:"matches"`
}

type serving struct {
	Queries           int     `json:"queries"`
	Accepted          int     `json:"accepted"`
	RejectedOverload  int     `json:"rejected_overload"`
	RejectedRateLimit int     `json:"rejected_ratelimit"`
	Errors            int     `json:"errors"`
	P50MS             float64 `json:"p50_ms"`
	P95MS             float64 `json:"p95_ms"`
	P99MS             float64 `json:"p99_ms"`
	MeanMS            float64 `json:"mean_ms"`
	MaxMS             float64 `json:"max_ms"`
	Matches           int     `json:"matches"`
}

// collector accumulates per-query outcomes from the query goroutines.
type collector struct {
	mu        sync.Mutex
	latencies []time.Duration
	accepted  int
	overload  int
	ratelimit int
	errors    int
	matches   int
}

func (c *collector) record(elapsed time.Duration, res *pier.QueryResult, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch {
	case errors.Is(err, pier.ErrOverloaded):
		c.overload++
	case errors.Is(err, pier.ErrRateLimited):
		c.ratelimit++
	case err != nil:
		c.errors++
	default:
		c.accepted++
		c.latencies = append(c.latencies, elapsed)
		for _, cand := range res.Candidates {
			if cand.Match {
				c.matches++
			}
		}
	}
}

// percentile returns the exact q-quantile (nearest-rank) of sorted samples.
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// toPublic converts an internal dataset profile to the public API type.
func toPublic(p *profile.Profile) pier.Profile {
	out := pier.Profile{Key: p.EntityKey, SourceB: p.Source == profile.SourceB}
	out.Attributes = make([]pier.Attribute, len(p.Attributes))
	for i, a := range p.Attributes {
		out.Attributes[i] = pier.Attribute{Name: a.Name, Value: a.Value}
	}
	return out
}

// run is the testable body of the command, per the cmd convention.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pierload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dsName := fs.String("dataset", "da", "synthetic dataset: da, movies, census, or webdata")
	scale := fs.Float64("scale", 0.1, "dataset scale factor")
	seed := fs.Int64("seed", 1, "deterministic seed for data, arrivals, and popularity")
	alg := fs.String("algorithm", "I-PES", "prioritization strategy for the ingest side")
	nIncs := fs.Int("increments", 50, "number of increments to split the stream into")
	rate := fs.Float64("rate", 100, "ingest rate in increments per second (0 = as fast as possible)")
	qps := fs.Float64("qps", 200, "mean query arrival rate (open loop)")
	duration := fs.Duration("duration", 5*time.Second, "length of the query phase")
	shapeFlag := fs.String("shape", "uniform", "arrival shape: uniform, bursty, or zipf")
	topK := fs.Int("topk", 0, "candidates run through the matcher per query (0 = default 10, negative = all)")
	maxInFlight := fs.Int("max-inflight", 0, "admission bound (0 = default 64, negative = unbounded)")
	queryRate := fs.Float64("query-rate", 0, "per-tenant rate limit in qps (0 disables)")
	queryBurst := fs.Float64("query-burst", 0, "per-tenant burst capacity (0 = one second of query-rate)")
	tenants := fs.Int("tenants", 4, "number of tenants issuing queries (Zipf popularity)")
	out := fs.String("out", "BENCH_serving.json", "output JSON artifact (empty writes to stdout)")
	verbose := fs.Bool("v", false, "print per-phase progress")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}

	fail := func(err error) int {
		fmt.Fprintln(stderr, "pierload:", err)
		return exitRuntime
	}
	usage := func(msg string) int {
		fmt.Fprintln(stderr, "pierload:", msg)
		return exitUsage
	}

	shape, err := dataset.ParseShape(*shapeFlag)
	if err != nil {
		return usage(err.Error())
	}
	var d *dataset.Dataset
	switch *dsName {
	case "da":
		d = dataset.DA(*scale, *seed)
	case "movies":
		d = dataset.Movies(*scale, *seed)
	case "census":
		d = dataset.Census(*scale, *seed)
	case "webdata":
		d = dataset.WebData(*scale, *seed)
	default:
		return usage(fmt.Sprintf("unknown dataset %q (want da, movies, census, or webdata)", *dsName))
	}
	nQueries := int(*qps * duration.Seconds())
	if nQueries <= 0 {
		return usage("-qps and -duration must produce at least one query")
	}
	if *tenants <= 0 {
		return usage("-tenants must be positive")
	}

	p, err := pier.NewPipeline(pier.Options{
		Algorithm:          pier.Algorithm(*alg),
		CleanClean:         d.CleanClean,
		QueryTopK:          *topK,
		MaxInFlightQueries: *maxInFlight,
		QueryRate:          *queryRate,
		QueryBurst:         *queryBurst,
	})
	if err != nil {
		return usage(err.Error())
	}

	incs := d.Increments(*nIncs)
	public := make([][]pier.Profile, len(incs))
	for i, inc := range incs {
		public[i] = make([]pier.Profile, len(inc))
		for j, pr := range inc {
			public[i][j] = toPublic(pr)
		}
	}

	// Seed the index with the first increment before queries start, then
	// ingest the rest concurrently with the query phase: the point of the
	// load test is serving during active ingest, not after it.
	ingestStart := time.Now()
	if err := p.Push(public[0]); err != nil {
		return fail(err)
	}
	var ingestElapsed time.Duration
	ingestDone := make(chan error, 1)
	go func() {
		var interval time.Duration
		if *rate > 0 {
			interval = time.Duration(float64(time.Second) / *rate)
		}
		for _, inc := range public[1:] {
			if interval > 0 {
				time.Sleep(interval)
			}
			if err := p.Push(inc); err != nil {
				ingestDone <- err
				return
			}
		}
		ingestElapsed = time.Since(ingestStart)
		ingestDone <- nil
	}()

	// Open-loop query phase: walk the arrival schedule, firing one goroutine
	// per arrival regardless of how many are still in flight. Probes are
	// copies of indexed profiles; the pipeline never learns it is being
	// probed with its own data.
	gaps := dataset.Arrivals(shape, nQueries, *qps, *seed+1)
	probePick := dataset.NewZipfPicker(d.NumProfiles(), 1.3, *seed+2)
	tenantPick := dataset.NewZipfPicker(*tenants, 1.5, *seed+3)
	probes := make([]pier.Profile, d.NumProfiles())
	for i, pr := range d.Profiles {
		probes[i] = toPublic(pr)
	}

	if *verbose {
		fmt.Fprintf(stdout, "pierload: %s, %d profiles in %d increments; %d queries over %v (%s)\n",
			d, d.NumProfiles(), len(incs), nQueries, *duration, shape)
	}
	col := &collector{}
	var wg sync.WaitGroup
	queryStart := time.Now()
	for _, gap := range gaps {
		time.Sleep(gap)
		probe := probes[probePick.Pick()]
		tenant := fmt.Sprintf("tenant-%d", tenantPick.Pick())
		wg.Add(1)
		go func() {
			defer wg.Done()
			t0 := time.Now()
			res, err := p.QueryTenant(context.Background(), tenant, probe)
			col.record(time.Since(t0), res, err)
		}()
	}
	wg.Wait()
	queryElapsed := time.Since(queryStart)

	if err := <-ingestDone; err != nil {
		return fail(fmt.Errorf("ingest: %w", err))
	}
	if ingestElapsed == 0 {
		ingestElapsed = time.Since(ingestStart)
	}
	summary := p.Stop()

	sort.Slice(col.latencies, func(i, j int) bool { return col.latencies[i] < col.latencies[j] })
	var total, max time.Duration
	for _, l := range col.latencies {
		total += l
		if l > max {
			max = l
		}
	}
	var mean time.Duration
	if len(col.latencies) > 0 {
		mean = total / time.Duration(len(col.latencies))
	}

	rep := report{
		Meta: meta{
			Dataset:     *dsName,
			Scale:       *scale,
			Algorithm:   *alg,
			Increments:  len(incs),
			IngestRate:  *rate,
			Shape:       string(shape),
			QPS:         *qps,
			DurationSec: duration.Seconds(),
			Seed:        *seed,
			TopK:        *topK,
			MaxInFlight: *maxInFlight,
			QueryRate:   *queryRate,
			Tenants:     *tenants,
		},
		Ingest: ingest{
			Profiles:    summary.Profiles,
			Increments:  len(incs),
			ElapsedMS:   ms(ingestElapsed),
			Comparisons: summary.Comparisons,
			Matches:     summary.Matches,
		},
		Serving: serving{
			Queries:           nQueries,
			Accepted:          col.accepted,
			RejectedOverload:  col.overload,
			RejectedRateLimit: col.ratelimit,
			Errors:            col.errors,
			P50MS:             ms(percentile(col.latencies, 0.50)),
			P95MS:             ms(percentile(col.latencies, 0.95)),
			P99MS:             ms(percentile(col.latencies, 0.99)),
			MeanMS:            ms(mean),
			MaxMS:             ms(max),
			Matches:           col.matches,
		},
	}
	if *verbose {
		fmt.Fprintf(stdout, "pierload: query phase %v: %d accepted, %d overload, %d rate-limited, %d errors\n",
			queryElapsed.Round(time.Millisecond), col.accepted, col.overload, col.ratelimit, col.errors)
		fmt.Fprintf(stdout, "pierload: p50 %.2fms p95 %.2fms p99 %.2fms max %.2fms, %d probe matches\n",
			rep.Serving.P50MS, rep.Serving.P95MS, rep.Serving.P99MS, rep.Serving.MaxMS, col.matches)
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fail(err)
	}
	blob = append(blob, '\n')
	if *out == "" {
		stdout.Write(blob)
		return exitOK
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		return fail(err)
	}
	fmt.Fprintf(stdout, "pierload: wrote %s (p50 %.2fms, p99 %.2fms, %d/%d accepted)\n",
		*out, rep.Serving.P50MS, rep.Serving.P99MS, col.accepted, nQueries)
	return exitOK
}
