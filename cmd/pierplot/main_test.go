package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeCurve(t *testing.T, path string, rows ...string) {
	t.Helper()
	content := "seconds,comparisons,found,pc\n" + strings.Join(rows, "\n") + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestPierplotSmoke renders two series from a temp directory end to end.
func TestPierplotSmoke(t *testing.T) {
	dir := t.TempDir()
	writeCurve(t, filepath.Join(dir, "fig7-da-IPCS.csv"),
		"0.5,100,3,0.1", "1.0,250,12,0.4", "2.0,600,27,0.9")
	writeCurve(t, filepath.Join(dir, "fig7-da-IPES.csv"),
		"0.5,90,5,0.17", "1.0,240,20,0.66", "2.0,580,29,0.96")
	writeCurve(t, filepath.Join(dir, "other-prefix.csv"), "1,1,1,1")

	var stdout bytes.Buffer
	if err := run([]string{"-dir", dir, "-prefix", "fig7-da", "-w", "40", "-h", "10"}, &stdout); err != nil {
		t.Fatal(err)
	}
	got := stdout.String()
	if !strings.Contains(got, "2 series") {
		t.Fatalf("prefix filter failed, output header: %q", strings.SplitN(got, "\n", 2)[0])
	}
	for _, label := range []string{"IPCS", "IPES"} {
		if !strings.Contains(got, label) {
			t.Fatalf("series %s missing from plot:\n%s", label, got)
		}
	}

	// The cmps axis must also render from the same files.
	stdout.Reset()
	if err := run([]string{"-dir", dir, "-prefix", "fig7-da", "-x", "cmps"}, &stdout); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "comparisons") {
		t.Fatalf("cmps axis label missing:\n%s", stdout.String())
	}
}

func TestPierplotErrors(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-dir", dir, "-prefix", "none"}, &bytes.Buffer{}); err == nil {
		t.Fatal("empty directory accepted")
	}
	writeCurve(t, filepath.Join(dir, "bad.csv"), "not,a,number,row,x")
	if err := os.WriteFile(filepath.Join(dir, "bad.csv"),
		[]byte("seconds,comparisons,found,pc\na,b,c,d\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-dir", dir, "-prefix", "bad"}, &bytes.Buffer{}); err == nil || !strings.Contains(err.Error(), "malformed") {
		t.Fatalf("malformed curve accepted: %v", err)
	}
}
