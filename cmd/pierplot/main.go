// Command pierplot renders PC curves exported by pierbench -curves as ASCII
// charts — a terminal rendition of the paper's figures.
//
//	pierbench -preset quick -exp fig7 -curves out/
//	pierplot -dir out -prefix fig7-webdata-ED            # PC over time
//	pierplot -dir out -prefix fig7-webdata-ED -x cmps    # PC over comparisons
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"pier/internal/plot"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pierplot:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("pierplot", flag.ContinueOnError)
	dir := fs.String("dir", ".", "directory containing pierbench curve CSVs")
	prefix := fs.String("prefix", "", "file-name prefix selecting the series to plot (e.g. fig7-webdata-ED)")
	xaxis := fs.String("x", "time", "x-axis: time (seconds) or cmps (comparisons)")
	width := fs.Int("w", 72, "plot width in characters")
	height := fs.Int("h", 18, "plot height in characters")
	if err := fs.Parse(args); err != nil {
		return err
	}

	entries, err := os.ReadDir(*dir)
	if err != nil {
		return err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, *prefix) && strings.HasSuffix(name, ".csv") {
			files = append(files, name)
		}
	}
	if len(files) == 0 {
		return fmt.Errorf("no %q*.csv files in %s (run pierbench with -curves first)", *prefix, *dir)
	}
	sort.Strings(files)

	var series []plot.Series
	for _, name := range files {
		pts, err := readCurve(filepath.Join(*dir, name), *xaxis == "cmps")
		if err != nil {
			return err
		}
		label := strings.TrimSuffix(strings.TrimPrefix(name, *prefix), ".csv")
		label = strings.Trim(label, "-_")
		if label == "" {
			label = name
		}
		series = append(series, plot.Series{Label: label, Points: pts})
	}
	xLabel := "virtual seconds"
	if *xaxis == "cmps" {
		xLabel = "comparisons"
	}
	fmt.Fprintf(stdout, "PC over %s — %s (%d series)\n\n", xLabel, *prefix, len(series))
	fmt.Fprint(stdout, plot.Render(series, *width, *height))
	return nil
}

// readCurve parses one pierbench curve CSV (seconds,comparisons,found,pc).
func readCurve(path string, byCmps bool) ([]plot.Point, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := csv.NewReader(f)
	recs, err := r.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	var pts []plot.Point
	for i, rec := range recs {
		if i == 0 || len(rec) < 4 {
			continue // header
		}
		x, err1 := strconv.ParseFloat(rec[0], 64)
		c, err2 := strconv.ParseFloat(rec[1], 64)
		y, err3 := strconv.ParseFloat(rec[3], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("%s line %d: malformed row", path, i+1)
		}
		if byCmps {
			x = c
		}
		pts = append(pts, plot.Point{X: x, Y: y})
	}
	return pts, nil
}
