// Command piercal calibrates experiment budgets: it reports the virtual time
// plain batch ER needs to complete each generated dataset under both match
// functions, the anchor from which experiment budgets are chosen.
package main

import (
	"flag"
	"fmt"
	"os"

	"pier/internal/baseline"
	"pier/internal/core"
	"pier/internal/dataset"
	"pier/internal/match"
	"pier/internal/stream"
)

func main() {
	preset := flag.String("preset", "quick", "quick or standard scales")
	flag.Parse()
	type scales struct{ da, mv, cs, wd float64 }
	sc := scales{0.25, 0.04, 0.002, 0.0008}
	if *preset == "standard" {
		sc = scales{1, 0.1, 0.005, 0.002}
	}
	for _, d := range []*dataset.Dataset{
		dataset.DA(sc.da, 1), dataset.Movies(sc.mv, 1), dataset.Census(sc.cs, 1), dataset.WebData(sc.wd, 1),
	} {
		for _, kind := range []match.Kind{match.JS, match.ED} {
			cfg := stream.DefaultConfig(d.CleanClean, kind, d.GroundTruth)
			res := stream.Run(baseline.NewBatch(core.DefaultConfig()), stream.Schedule(d.Increments(1), 0), cfg)
			fmt.Fprintf(os.Stdout, "%-10s %s: batch completes in %12v  (%8d cmps, PC %.3f)\n",
				d.Name, kind, res.Elapsed, res.Comparisons, res.Curve.FinalPC())
		}
	}
}
