package pier_test

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"pier"
)

// TestCheckpointRestoreResumesRun feeds half a workload, checkpoints the
// running pipeline, restores it into a fresh one, feeds the rest, and checks
// the recovered totals and clusters equal an uninterrupted run's.
func TestCheckpointRestoreResumesRun(t *testing.T) {
	profiles, _ := moviePairs()
	opt := pier.Options{Algorithm: pier.IPES, CleanClean: true, CheckInvariants: true}
	half := len(profiles) / 2

	full, err := pier.NewPipeline(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range profiles {
		if err := full.Push([]pier.Profile{pr}); err != nil {
			t.Fatal(err)
		}
	}
	want := full.Stop()

	p, err := pier.NewPipeline(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range profiles[:half] {
		if err := p.Push([]pier.Profile{pr}); err != nil {
			t.Fatal(err)
		}
	}
	var snap bytes.Buffer
	n, err := p.Checkpoint(&snap)
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if n <= 0 || int(n) != snap.Len() {
		t.Fatalf("Checkpoint reported %d bytes, buffer holds %d", n, snap.Len())
	}
	p.Stop() // the checkpointed original is independent of the restored copy

	var mu sync.Mutex
	reported := 0
	ropt := opt
	ropt.OnMatch = func(pier.Match) { mu.Lock(); reported++; mu.Unlock() }
	r, err := pier.Restore(&snap, ropt)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	for _, pr := range profiles[half:] {
		if err := r.Push([]pier.Profile{pr}); err != nil {
			t.Fatal(err)
		}
	}
	got := r.Stop()

	if got.Profiles != want.Profiles || got.Comparisons != want.Comparisons ||
		got.Matches != want.Matches || got.NewLinks != want.NewLinks {
		t.Errorf("recovered summary %+v, want %+v", got, want)
	}
	if len(r.Clusters()) != len(full.Clusters()) {
		t.Errorf("recovered %d clusters, want %d", len(r.Clusters()), len(full.Clusters()))
	}
	// Match reporting after restore resolves profile IDs through the
	// restored registry; every post-restore match must have been reported.
	mu.Lock()
	defer mu.Unlock()
	if reported == 0 {
		t.Error("no matches reported after restore")
	}
}

// TestCheckpointFileRoundTrip checkpoints to a real file — the deployment
// path, not an in-memory buffer — and restores from it twice: once onto the
// default in-memory backend and once onto the disk-spill backend
// (StorageBudget small enough to force spilling on this workload). Both
// restored pipelines must finish with the uninterrupted run's exact totals:
// the storage backend is a residency knob, never a semantic one.
func TestCheckpointFileRoundTrip(t *testing.T) {
	profiles, _ := moviePairs()
	opt := pier.Options{Algorithm: pier.IPES, CleanClean: true, CheckInvariants: true}
	half := len(profiles) / 2

	full, err := pier.NewPipeline(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range profiles {
		if err := full.Push([]pier.Profile{pr}); err != nil {
			t.Fatal(err)
		}
	}
	want := full.Stop()

	p, err := pier.NewPipeline(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range profiles[:half] {
		if err := p.Push([]pier.Profile{pr}); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "run.snap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	n, err := p.Checkpoint(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatalf("checkpoint to %s: %v", path, err)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() != n {
		t.Fatalf("checkpoint reported %d bytes, file holds %v (stat err %v)", n, fi, err)
	}
	p.Stop()

	for _, budget := range []int64{0, 4 << 10} {
		rf, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		ropt := opt
		ropt.StorageBudget = budget
		r, err := pier.Restore(rf, ropt)
		rf.Close()
		if err != nil {
			t.Fatalf("restore (budget=%d): %v", budget, err)
		}
		for _, pr := range profiles[half:] {
			if err := r.Push([]pier.Profile{pr}); err != nil {
				t.Fatal(err)
			}
		}
		got := r.Stop()
		if !sameSummary(got, want) {
			t.Errorf("restored run (budget=%d) finished with %+v, want %+v", budget, got, want)
		}
		if err := r.Close(); err != nil {
			t.Errorf("close restored pipeline (budget=%d): %v", budget, err)
		}
	}
}

// sameSummary compares summaries up to wall-clock time.
func sameSummary(a, b pier.Summary) bool {
	return a.Profiles == b.Profiles && a.Comparisons == b.Comparisons &&
		a.Matches == b.Matches && a.NewLinks == b.NewLinks
}

// TestRestoreV2Fixture restores the committed format-v2 snapshot
// (testdata/checkpoint_v2.snap, written by genfixture.go from the first half
// of the movie workload) on both storage backends and finishes the run. The
// fixture pins on-disk compatibility: a change that breaks reading existing
// v2 checkpoints — a struct rename the gob decoder can't map, a container
// tweak without a version bump — fails here, not in a user's recovery path.
func TestRestoreV2Fixture(t *testing.T) {
	profiles, _ := moviePairs()
	opt := pier.Options{Algorithm: pier.IPES, CleanClean: true, CheckInvariants: true}

	full, err := pier.NewPipeline(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range profiles {
		if err := full.Push([]pier.Profile{pr}); err != nil {
			t.Fatal(err)
		}
	}
	want := full.Stop()

	for _, budget := range []int64{0, 4 << 10} {
		f, err := os.Open(filepath.Join("testdata", "checkpoint_v2.snap"))
		if err != nil {
			t.Fatal(err)
		}
		ropt := opt
		ropt.StorageBudget = budget
		r, err := pier.Restore(f, ropt)
		f.Close()
		if err != nil {
			t.Fatalf("restore v2 fixture (budget=%d): %v", budget, err)
		}
		for _, pr := range profiles[len(profiles)/2:] {
			if err := r.Push([]pier.Profile{pr}); err != nil {
				t.Fatal(err)
			}
		}
		got := r.Stop()
		if !sameSummary(got, want) {
			t.Errorf("fixture run (budget=%d) finished with %+v, want %+v", budget, got, want)
		}
		if err := r.Close(); err != nil {
			t.Errorf("close fixture pipeline (budget=%d): %v", budget, err)
		}
	}
}

// TestRestoreRejectsMismatchedOptions: a snapshot only restores into the
// configuration that wrote it.
func TestRestoreRejectsMismatchedOptions(t *testing.T) {
	profiles, _ := moviePairs()
	opt := pier.Options{Algorithm: pier.IPCS, CleanClean: true}
	p, err := pier.NewPipeline(opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Push(profiles); err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if _, err := p.Checkpoint(&snap); err != nil {
		t.Fatal(err)
	}
	p.Stop()

	wrong := opt
	wrong.Algorithm = pier.IPES
	if _, err := pier.Restore(bytes.NewReader(snap.Bytes()), wrong); err == nil || !strings.Contains(err.Error(), "strategy") {
		t.Errorf("Restore with wrong algorithm: err = %v", err)
	}
	if _, err := pier.Restore(bytes.NewReader([]byte("garbage")), opt); err == nil {
		t.Error("Restore from garbage succeeded")
	}
}

// TestCheckpointUncheckpointableAlgorithm: baseline strategies carry no
// persistence; Checkpoint must fail loudly, not write a partial snapshot.
func TestCheckpointUncheckpointableAlgorithm(t *testing.T) {
	p, err := pier.NewPipeline(pier.Options{Algorithm: pier.BatchER})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	var snap bytes.Buffer
	if _, err := p.Checkpoint(&snap); err == nil {
		t.Fatal("Checkpoint of a baseline strategy succeeded")
	}
}

// TestCustomFallibleMatcher runs the public fault envelope end to end: a
// matcher that fails transiently on every first attempt per pair must still
// produce the same matches as the built-in Jaccard matcher.
func TestCustomFallibleMatcher(t *testing.T) {
	profiles, _ := moviePairs()
	_, clean, err := pier.Resolve(profiles, pier.Options{CleanClean: true})
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	seen := map[[2]string]bool{}
	failures := 0
	jac := func(x, y pier.Profile) bool {
		// The reference similarity, via the library's own classifier on a
		// tiny two-profile resolve, would be circular; re-implement token
		// Jaccard >= 0.5 directly.
		toks := func(p pier.Profile) map[string]bool {
			m := map[string]bool{}
			for _, a := range p.Attributes {
				for _, tok := range strings.Fields(strings.ToLower(a.Value)) {
					m[strings.Trim(tok, ".,():")] = true
				}
			}
			return m
		}
		tx, ty := toks(x), toks(y)
		inter := 0
		for tok := range tx {
			if ty[tok] {
				inter++
			}
		}
		union := len(tx) + len(ty) - inter
		return union > 0 && float64(inter)/float64(union) >= 0.5
	}
	matcher := func(ctx context.Context, x, y pier.Profile) (bool, error) {
		mu.Lock()
		key := [2]string{x.Key, y.Key}
		first := !seen[key]
		seen[key] = true
		if first {
			failures++
		}
		mu.Unlock()
		if first {
			return false, errors.New("transient outage")
		}
		return jac(x, y), nil
	}
	matches, faulty, err := pier.Resolve(profiles, pier.Options{
		CleanClean:   true,
		Matcher:      matcher,
		MatchRetries: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if failures == 0 {
		t.Fatal("matcher never failed; test is vacuous")
	}
	if faulty.Comparisons != clean.Comparisons {
		t.Errorf("fallible run executed %d comparisons, built-in run %d", faulty.Comparisons, clean.Comparisons)
	}
	if len(matches) == 0 {
		t.Error("fallible matcher found no duplicates")
	}
}
