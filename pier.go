// Package pier is a schema-agnostic entity-resolution library for streaming
// and incremental data, implementing the PIER algorithms of Gazzarri &
// Herschel, "Progressive Entity Resolution over Incremental Data" (EDBT
// 2023): progressive prioritization of comparisons over a global, incremental
// comparison index, with adaptive batch sizing between stream increments.
//
// The core abstraction is the Pipeline: callers push increments of entity
// profiles as they arrive; the pipeline blocks them schema-agnostically,
// prioritizes the most promising comparisons across *all* data seen so far,
// and reports duplicates as soon as they are found — filling idle time
// between increments with the best leftover comparisons instead of waiting.
//
//	p, _ := pier.NewPipeline(pier.Options{
//	        Algorithm:  pier.IPES,
//	        CleanClean: true,
//	        OnMatch:    func(m pier.Match) { fmt.Println(m.X.Key, "=", m.Y.Key) },
//	})
//	p.Push(increment1)
//	p.Push(increment2)
//	summary := p.Stop()
//
// For one-shot deduplication of a static dataset, use Resolve. For
// reproducing the paper's experiments, see cmd/pierbench and the root
// benchmark suite.
package pier

import (
	"context"
	"fmt"
	"time"

	"pier/internal/baseline"
	"pier/internal/blocking"
	"pier/internal/core"
	"pier/internal/match"
	"pier/internal/metablocking"
	"pier/internal/obsv"
	"pier/internal/profile"
	"pier/internal/serve"
	"pier/internal/stream"
)

// Algorithm selects the comparison prioritization strategy of a pipeline.
type Algorithm string

// The available algorithms. IPES is the paper's overall best performer and
// the recommended default; the others exist for workloads with specific
// structure (IPBS for short relational records with highly informative small
// blocks) and for comparison (IBase and the batch adaptations).
const (
	// IPCS is comparison-centric prioritization: one bounded queue of the
	// globally best-weighted comparisons (paper Algorithm 2).
	IPCS Algorithm = "I-PCS"
	// IPBS is block-centric prioritization: smallest pending block first
	// (paper Algorithm 3).
	IPBS Algorithm = "I-PBS"
	// IPES is entity-centric prioritization: best entity first, one
	// comparison per entity per round (paper Algorithm 4).
	IPES Algorithm = "I-PES"
	// IBase is the non-progressive incremental baseline of the framework
	// the paper extends (Gazzarri & Herschel, ICDE 2021).
	IBase Algorithm = "I-BASE"
	// PPSGlobal and PBSGlobal are the batch progressive algorithms of
	// Simonini et al. (TKDE 2019) re-initialized on every increment;
	// PPSLocal prioritizes within each increment only.
	PPSGlobal Algorithm = "PPS-GLOBAL"
	PPSLocal  Algorithm = "PPS-LOCAL"
	PBSGlobal Algorithm = "PBS-GLOBAL"
	// BatchER is plain blocking-based batch ER with no prioritization.
	BatchER Algorithm = "BATCH"
	// Auto defers the choice between the PIER strategies until the first
	// increment arrives and picks by the data's characteristics (the
	// paper's future-work heuristic): I-PBS for short homogeneous records,
	// I-PES otherwise.
	Auto Algorithm = "AUTO"
	// ISN is an extension beyond the paper: incremental sorted-neighborhood
	// prioritization over a dynamic token index, catching near-miss keys
	// that token blocking cannot pair (e.g. leading-character typos).
	ISN Algorithm = "I-SN"
)

// MatchFunc selects the similarity function of the matching step.
type MatchFunc int

const (
	// Jaccard similarity over token sets: cheap, the pipeline's default.
	Jaccard MatchFunc = iota
	// EditDistance is normalized Levenshtein similarity over the joined
	// attribute values: expensive, for high-precision matching of short
	// records.
	EditDistance
	// JaroWinkler similarity over the joined values: mid-cost, tuned for
	// person and organization names.
	JaroWinkler
	// CosineSim is set cosine similarity over token sets.
	CosineSim
	// OverlapSim is the overlap coefficient over token sets — forgiving
	// when one profile is much shorter than the other.
	OverlapSim
	// MongeElkanSim matches token lists through a Jaro-Winkler inner
	// measure: the most robust (and most expensive) option for short,
	// noisy records.
	MongeElkanSim
)

// WeightScheme selects the meta-blocking weighting scheme used to rank
// comparisons.
type WeightScheme int

const (
	// CBS (Common Blocks Scheme) is the paper's default: the number of
	// blocks two profiles share.
	CBS WeightScheme = iota
	// JSWeight is the Jaccard coefficient of the profiles' block sets.
	JSWeight
	// ECBS is CBS with inverse block-frequency correction.
	ECBS
	// ARCS sums reciprocal block comparison counts.
	ARCS
)

// Blocking selects the blocking-key extractor of the pipeline.
type Blocking int

const (
	// TokenBlocking (default) blocks profiles by their value tokens.
	TokenBlocking Blocking = iota
	// QGramBlocking blocks by 3-grams of the tokens: robust against
	// character typos at the cost of a larger block collection.
	QGramBlocking
	// SuffixBlocking blocks by token suffixes (>= 4 runes): robust
	// against prefix corruptions.
	SuffixBlocking
)

// Attribute is one name/value pair of a profile. Attribute names carry no
// semantics (the pipeline is schema-agnostic); they are preserved for the
// caller's benefit.
type Attribute struct {
	Name  string
	Value string
}

// Profile is an entity profile as supplied by the caller. Key is an optional
// caller-side identifier reported back in matches; SourceB tags profiles of
// the second source in Clean-Clean (two duplicate-free sources) tasks and is
// ignored for Dirty (single-source) tasks.
type Profile struct {
	Key        string
	SourceB    bool
	Attributes []Attribute
}

// Attr is a convenience constructor for a profile from alternating
// name, value strings.
func Attr(nameValue ...string) []Attribute {
	if len(nameValue)%2 != 0 {
		panic("pier.Attr: odd number of name/value arguments")
	}
	out := make([]Attribute, 0, len(nameValue)/2)
	for i := 0; i < len(nameValue); i += 2 {
		out = append(out, Attribute{Name: nameValue[i], Value: nameValue[i+1]})
	}
	return out
}

// Match is one detected duplicate pair.
type Match struct {
	X, Y       Profile
	Similarity float64
}

// Snapshot is a point-in-time, thread-safe view of a running pipeline's
// internals: the same numbers pierrun's /metrics endpoint exposes, for
// embedders that want them without HTTP. Counters are cumulative for the
// pipeline's lifetime; K, Pending, and DedupEntries are instantaneous.
type Snapshot struct {
	// Profiles and Increments count ingested profiles and Push calls.
	Profiles   int
	Increments int
	// Comparisons and Matches are the executed-comparison and duplicate
	// counts — always equal to Stats() and, after Stop, to the Summary.
	Comparisons int
	Matches     int
	// NewLinks counts matches that connected two previously separate
	// entity clusters.
	NewLinks int
	// SkippedEvicted counts prioritized comparisons dropped because one
	// profile had already left the Options.Window.
	SkippedEvicted int
	// WindowEvictions counts profiles evicted under Options.Window.
	WindowEvictions int
	// K is the live adaptive batch size (the paper's findK).
	K int
	// Pending is the depth of the prioritized-comparison queue.
	Pending int
	// DedupEntries is the size of the executed-comparison dedup map.
	DedupEntries int
}

// Admission errors of the query path. Both reject fast — a rejected Query
// returns immediately, so callers can shed load or retry elsewhere.
var (
	// ErrOverloaded reports that Options.MaxInFlightQueries was reached.
	ErrOverloaded = serve.ErrOverloaded
	// ErrRateLimited reports that the tenant exceeded Options.QueryRate.
	ErrRateLimited = serve.ErrRateLimited
)

// QueryCandidate is one ranked candidate of a Query answer.
type QueryCandidate struct {
	// Profile is the indexed profile the probe was compared against.
	Profile Profile
	// Weight is the meta-blocking scheme weight of (probe, candidate) —
	// the ranking key, comparable across candidates of one query.
	Weight float64
	// Similarity is the matcher's similarity score, when the configured
	// matcher produces one (a custom Matcher reports 1 for a match).
	Similarity float64
	// Match reports the matcher's verdict.
	Match bool
	// Err is the matcher failure for this candidate, if any (timeout, open
	// circuit breaker, backend error). A failed candidate keeps its rank:
	// its verdict is unknown, not negative.
	Err error
}

// QueryResult is the answer to one online point query.
type QueryResult struct {
	// Candidates are the top-ranked candidates, best weight first.
	Candidates []QueryCandidate
	// Considered is the number of distinct co-blocked partners found in
	// the index before the top-K cut.
	Considered int
	// Elapsed is the end-to-end query latency.
	Elapsed time.Duration
}

// Summary reports the totals of a finished pipeline.
type Summary struct {
	Profiles    int
	Comparisons int
	// Matches counts pairwise duplicate classifications; NewLinks counts
	// those that connected two previously separate entity clusters.
	Matches  int
	NewLinks int
	Elapsed  time.Duration
}

// Options configures a Pipeline or a Resolve call. The zero value is valid:
// Dirty ER with I-PES, Jaccard matching, and the paper's default tuning.
type Options struct {
	// Algorithm selects the prioritization strategy (default IPES).
	Algorithm Algorithm
	// CleanClean selects Clean-Clean ER: only pairs spanning the two
	// sources (SourceB false/true) are ever compared.
	CleanClean bool
	// MatchFunc selects the similarity function (default Jaccard).
	MatchFunc MatchFunc
	// MatchThreshold is the duplicate-classification threshold in (0, 1];
	// 0 means the default (0.5).
	MatchThreshold float64
	// Scheme selects the comparison weighting scheme (default CBS).
	Scheme WeightScheme
	// MaxBlockSize purges blocks larger than this many profiles; 0 means
	// the default (80), negative disables purging.
	MaxBlockSize int
	// Beta is the block-ghosting parameter in (0, 1]; 0 means the default
	// (0.2), negative disables ghosting.
	Beta float64
	// IndexCapacity bounds the comparison index; 0 means the default
	// (100000), negative means unbounded.
	IndexCapacity int
	// Matcher, when set, replaces MatchFunc with a caller-supplied pairwise
	// classifier that may fail — a remote model, a service call. The
	// pipeline wraps it in a fault envelope: per-comparison timeout
	// (MatchTimeout), exponential-backoff retries (MatchRetries), and a
	// circuit breaker that, while open, requeues in-flight comparisons and
	// tightens the emitted batch size until the matcher recovers. Failed
	// comparisons are retried until they succeed — never dropped.
	Matcher MatcherFunc
	// MatchTimeout bounds one Matcher attempt; 0 means the default (100ms),
	// negative disables the timeout. Ignored unless Matcher is set.
	MatchTimeout time.Duration
	// MatchRetries is the number of in-place retry attempts after a failed
	// Matcher call before the comparison goes back to the retry queue; 0
	// means the default (2), negative disables in-place retries. Ignored
	// unless Matcher is set.
	MatchRetries int
	// OnMatch, if set, is invoked synchronously for every detected
	// duplicate, as soon as it is found.
	OnMatch func(Match)
	// TickEvery is how often idle pipelines reconsider leftover
	// comparisons; 0 means the default (50ms).
	TickEvery time.Duration
	// Parallelism is the worker count of the pipeline's parallel stages —
	// per-profile candidate generation and within-batch similarity
	// computation. 0 (the default) or negative uses one worker per CPU;
	// 1 forces exact serial execution; n > 1 uses n workers. Results are
	// identical for every setting (parallel work is merged back in
	// deterministic order); only throughput changes.
	Parallelism int
	// Shards is the blocking index's shard count, rounded up to a power of
	// two and clamped to [1, 256]. It is an ingest concurrency knob, never a
	// semantic one: the pipeline's results are identical for every value. 0
	// (the default) picks the smallest power of two >= GOMAXPROCS, capped at
	// 64; 1 forces an unsharded index.
	Shards int
	// Blocking selects the blocking-key extractor (default TokenBlocking).
	Blocking Blocking
	// Window bounds the number of profiles held in memory for unbounded
	// streams; the oldest are evicted. 0 keeps everything.
	Window int
	// Keyer, when set, overrides Blocking with a custom blocking-key
	// extractor — e.g. one learned with LearnAttributeClustering.
	Keyer KeyerFunc
	// CheckInvariants enables runtime self-verification of the pipeline's
	// internal structures: the strategy's comparison index (heap order,
	// pending accounting) after every increment, and the live runner's
	// dedup/counter bookkeeping after every batch. Violations panic with a
	// description of the broken invariant. Intended for tests, debugging,
	// and canary deployments — the index checks cost O(index size) per
	// increment.
	CheckInvariants bool

	// QueryTopK bounds how many top-ranked candidates Query runs through
	// the matcher; 0 means the default (10), negative means all candidates.
	QueryTopK int
	// MaxInFlightQueries bounds concurrently admitted queries; excess
	// queries fail fast with ErrOverloaded. 0 means the default (64),
	// negative disables the bound.
	MaxInFlightQueries int
	// QueryRate enables a per-tenant token-bucket rate limit on queries, in
	// queries per second; queries over the limit fail fast with
	// ErrRateLimited. 0 (the default) disables rate limiting.
	QueryRate float64
	// QueryBurst is the per-tenant bucket capacity when QueryRate is set;
	// 0 means max(1, QueryRate) — one second of traffic.
	QueryBurst float64

	// StorageBudget bounds the resident memory, in bytes, of the pipeline's
	// two stream-proportional structures — the blocking index's posting
	// lists and the executed-pair dedup set. State beyond the budget spills
	// to temp files (cold shards first) and is read back transparently on
	// access. 0 (the default) keeps everything in memory. The budget is a
	// residency knob, never a semantic one: every result, match, and query
	// answer is bit-identical for every setting. Pipelines with a budget
	// should be finished with Close after Stop so spill files are removed
	// promptly.
	StorageBudget int64
}

// KeyerFunc derives the blocking keys of a profile. Profiles that share at
// least one key become comparison candidates.
type KeyerFunc func(Profile) []string

// MatcherFunc is a caller-supplied pairwise duplicate classifier that may
// fail. It must respect ctx cancellation for the pipeline's per-comparison
// timeout to be effective; returning an error marks the attempt failed (the
// comparison is retried, never dropped).
type MatcherFunc func(ctx context.Context, x, y Profile) (bool, error)

// contextMatcher wraps Options.Matcher in the retry/timeout/breaker
// envelope, or returns nil when no custom matcher is configured.
func (o Options) contextMatcher() match.ContextMatcher {
	if o.Matcher == nil {
		return nil
	}
	custom := o.Matcher
	inner := match.ContextFunc(func(ctx context.Context, a, b *profile.Profile) (bool, error) {
		return custom(ctx, toPublicProfile(a), toPublicProfile(b))
	})
	fcfg := match.DefaultFallibleConfig()
	if o.MatchTimeout > 0 {
		fcfg.Timeout = o.MatchTimeout
	} else if o.MatchTimeout < 0 {
		fcfg.Timeout = 0
	}
	if o.MatchRetries > 0 {
		fcfg.MaxRetries = o.MatchRetries
	} else if o.MatchRetries < 0 {
		fcfg.MaxRetries = 0
	}
	return match.NewFallible(inner, fcfg)
}

// keyer resolves the blocking-key extractor.
func (o Options) keyer() blocking.Keyer {
	if o.Keyer != nil {
		custom := o.Keyer
		return func(p *profile.Profile) []string {
			return custom(toPublicProfile(p))
		}
	}
	switch o.Blocking {
	case QGramBlocking:
		return profile.QGramKeys
	case SuffixBlocking:
		return profile.SuffixKeys
	default:
		return nil
	}
}

// toPublicProfile converts an internal profile back to the API type (the
// caller's Key is stored as the internal EntityKey).
func toPublicProfile(p *profile.Profile) Profile {
	out := Profile{Key: p.EntityKey, SourceB: p.Source == profile.SourceB}
	out.Attributes = make([]Attribute, len(p.Attributes))
	for i, a := range p.Attributes {
		out.Attributes[i] = Attribute{Name: a.Name, Value: a.Value}
	}
	return out
}

// LearnAttributeClustering learns an attribute-clustering blocking keyer
// from sample profiles (see internal/blocking.NewAttrClusterer): attribute
// names with similar value vocabularies are clustered, and blocking keys are
// cluster-prefixed tokens, so profiles collide only on tokens of comparable
// attributes. threshold <= 0 uses the default (0.15). Train on a
// representative sample — e.g. the first increments — and pass the result as
// Options.Keyer.
func LearnAttributeClustering(sample []Profile, threshold float64) KeyerFunc {
	internal := make([]*profile.Profile, len(sample))
	for i, pr := range sample {
		attrs := make([]profile.Attribute, len(pr.Attributes))
		for j, a := range pr.Attributes {
			attrs[j] = profile.Attribute{Name: a.Name, Value: a.Value}
		}
		src := profile.SourceA
		if pr.SourceB {
			src = profile.SourceB
		}
		internal[i] = &profile.Profile{ID: i, Source: src, EntityKey: pr.Key, Attributes: attrs}
	}
	clusterer := blocking.NewAttrClusterer(internal, threshold)
	keyer := clusterer.Keyer()
	return func(pr Profile) []string {
		attrs := make([]profile.Attribute, len(pr.Attributes))
		for j, a := range pr.Attributes {
			attrs[j] = profile.Attribute{Name: a.Name, Value: a.Value}
		}
		return keyer(&profile.Profile{Attributes: attrs})
	}
}

// matcher builds the internal matcher from the options.
func (o Options) matcher() match.Matcher {
	kind := match.JS
	switch o.MatchFunc {
	case EditDistance:
		kind = match.ED
	case JaroWinkler:
		kind = match.JW
	case CosineSim:
		kind = match.COS
	case OverlapSim:
		kind = match.OVL
	case MongeElkanSim:
		kind = match.ME
	}
	m := match.NewMatcher(kind)
	if o.MatchThreshold > 0 {
		m.Threshold = o.MatchThreshold
	}
	return m
}

// scheme maps the public weighting scheme to the internal one. It is shared
// by the strategy configuration and the live config's query-side ranking, so
// online queries rank candidates exactly as the stream prioritizes them.
func (o Options) scheme() metablocking.Scheme {
	switch o.Scheme {
	case JSWeight:
		return metablocking.JSScheme
	case ECBS:
		return metablocking.ECBS
	case ARCS:
		return metablocking.ARCS
	default:
		return metablocking.CBS
	}
}

// coreConfig builds the strategy configuration from the options.
func (o Options) coreConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Scheme = o.scheme()
	if o.Beta > 0 {
		cfg.Beta = o.Beta
	} else if o.Beta < 0 {
		cfg.Beta = 0
	}
	if o.IndexCapacity > 0 {
		cfg.IndexCapacity = o.IndexCapacity
	} else if o.IndexCapacity < 0 {
		cfg.IndexCapacity = 0
	}
	cfg.Parallelism = o.Parallelism
	cfg.CheckInvariants = o.CheckInvariants
	return cfg
}

// maxBlockSize resolves the block-purging threshold.
func (o Options) maxBlockSize() int {
	switch {
	case o.MaxBlockSize > 0:
		return o.MaxBlockSize
	case o.MaxBlockSize < 0:
		return 0
	default:
		return stream.DefaultMaxBlockSize
	}
}

// strategy instantiates the selected algorithm. reg, if non-nil, is the
// metrics registry the strategy's candidate-generation pool reports into —
// the same registry the live pipeline uses, so one endpoint covers both
// parallel stages.
func (o Options) strategy(reg *obsv.Registry) (core.Strategy, error) {
	cfg := o.coreConfig()
	cfg.Metrics = reg
	switch o.Algorithm {
	case "", IPES:
		return core.NewIPES(cfg), nil
	case Auto:
		return core.NewAuto(cfg), nil
	case ISN:
		return core.NewISN(cfg, 0), nil
	case IPCS:
		return core.NewIPCS(cfg), nil
	case IPBS:
		return core.NewIPBS(cfg), nil
	case IBase:
		return baseline.NewIBase(cfg), nil
	case PPSGlobal:
		return baseline.NewPPS(cfg, baseline.ScopeGlobal, ""), nil
	case PPSLocal:
		return baseline.NewPPS(cfg, baseline.ScopeLocal, ""), nil
	case PBSGlobal:
		return baseline.NewPBS(cfg, baseline.ScopeGlobal, ""), nil
	case BatchER:
		return baseline.NewBatch(cfg), nil
	default:
		return nil, fmt.Errorf("pier: unknown algorithm %q", o.Algorithm)
	}
}
